"""Duplicate delivery of any protocol message must be a no-op (section 4.6).

The at-least-once hardening makes every payload either naturally idempotent
or sequence-deduplicated.  The broad test here records every message a real
run delivers, then replays the whole log a second time and checks that no
site's heap or ioref tables moved; targeted tests force duplicates through a
live protocol exchange with a 100%-duplication fault plan.
"""

import json

from repro import GcConfig, Simulation, SimulationConfig
from repro.analysis import Oracle
from repro.metrics import graph_snapshot, names
from repro.net.faults import FaultPlan
from repro.workloads import GraphBuilder, build_ring_cycle

GC = GcConfig(suspicion_threshold=1, assumed_cycle_length=2, back_threshold_increment=1)

#: Payload kinds carrying explicit duplicate-suppression sequence numbers.
SEQUENCED = {
    "InsertRequest",
    "InsertDone",
    "UnpinRequest",
    "RemoteCopy",
    "MutatorHop",
    "UpdatePayload",
    "UpdateDeltaPayload",
}


def _graph_state(sim):
    snap = graph_snapshot(sim)
    snap.pop("time", None)  # the clock may advance while replays settle
    return json.dumps(snap, sort_keys=True)


def _tap_deliveries(sim, sites):
    delivered = []
    for sid in sites:
        original = sim.network._endpoints[sid]

        def tap(msg, original=original):
            delivered.append(msg)
            original(msg)

        sim.network.register(sid, tap)
    return delivered


def _run_traffic():
    """A run that exercises every protocol message kind at least once."""
    sim = Simulation(SimulationConfig(seed=7, gc=GC))
    sites = ["P", "Q", "R"]
    sim.add_sites(sites, auto_gc=False)
    delivered = _tap_deliveries(sim, sites)

    builder = GraphBuilder(sim)
    root = builder.obj("P", root=True)
    a, b, c = builder.obj("P"), builder.obj("Q"), builder.obj("R")
    builder.link(root, a)
    sim.site("P").mutator_add_ref(a, b)  # insert protocol P->Q
    sim.settle()
    sim.site("Q").mutator_add_ref(b, c)  # insert protocol Q->R
    sim.settle()
    sim.site("P").mutator_send_ref("R", b, c)  # remote copy P->R (insert)
    sim.settle()
    sim.site("P").mutator_send_ref("R", b, c)  # again: no insert, unpin P
    sim.settle()
    sim.site("P").mutator_hop("m0", b)  # mutator hop P->Q
    sim.settle()

    ring = build_ring_cycle(sim, sites, rooted=True)
    ring.make_garbage(sim)
    oracle = Oracle(sim)
    for _ in range(30):
        sim.run_gc_round()
        oracle.check_safety()
        if not oracle.garbage_set():
            break
    sim.settle()
    assert not oracle.garbage_set()
    return sim, oracle, delivered


def test_replaying_the_entire_delivery_log_changes_nothing():
    sim, oracle, delivered = _run_traffic()
    kinds = {message.kind for message in delivered}
    assert SEQUENCED | {"BackCall", "BackReply", "BackOutcome"} <= kinds

    before = _graph_state(sim)
    for message in list(delivered):
        sim.site(message.dst).receive(message)
    sim.settle()  # re-acks triggered by replayed updates drain harmlessly
    oracle.check_safety()
    assert _graph_state(sim) == before

    # Every replayed sequenced payload was recognized as a duplicate...
    replayed = {}
    for message in delivered:
        if message.kind in SEQUENCED and getattr(message.payload, "seq", -1) > 0:
            replayed[message.kind] = replayed.get(message.kind, 0) + 1
    for kind, count in replayed.items():
        assert sim.metrics.count(names.dup_suppressed(kind)) >= count, kind
    # ...and late back-trace traffic bounced off the finished-trace records.
    stale = (
        sim.metrics.count("backtrace.stale_calls")
        + sim.metrics.count("backtrace.stale_replies")
        + sim.metrics.count(names.dup_suppressed("BackCall"))
        + sim.metrics.count(names.dup_suppressed("BackReply"))
        + sim.metrics.count(names.dup_suppressed("BackOutcome"))
    )
    assert stale > 0


def test_collection_is_correct_when_every_message_is_duplicated():
    """100% duplication, live: dedup works mid-protocol, not just post-hoc."""
    plan = FaultPlan.duplication(1.0, copies=1, lag=3.0).named("dup-all")
    sim = Simulation.create(SimulationConfig(seed=11, gc=GC), fault_plan=plan)
    sites = ["P", "Q", "R"]
    sim.add_sites(sites, auto_gc=False)
    doomed = build_ring_cycle(sim, sites, rooted=True)
    live = build_ring_cycle(sim, sites[::-1], rooted=True)
    sim.settle()
    doomed.make_garbage(sim)
    oracle = Oracle(sim)
    for _ in range(30):
        sim.run_gc_round()
        oracle.check_safety()
        if not oracle.garbage_set():
            break
    sim.settle()
    oracle.check_safety()
    assert not oracle.garbage_set()
    for member in live.cycle:
        assert sim.site(member.site).heap.contains(member)
    suppressed = sim.metrics.counts_with_prefix("protocol.dup_suppressed.")
    assert suppressed, "duplication plan produced no suppressed duplicates"
