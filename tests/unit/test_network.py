"""Unit tests for the simulated network."""

from dataclasses import dataclass

import pytest

from repro.config import NetworkConfig
from repro.errors import UnknownSiteError
from repro.metrics import MetricsRecorder
from repro.net.latency import ConstantLatency, ExponentialLatency, UniformLatency
from repro.net.message import Payload
from repro.net.network import Network
from repro.sim.rng import RngRegistry
from repro.sim.scheduler import Scheduler


@dataclass(frozen=True)
class Ping(Payload):
    n: int = 0


def make_net(config=None, latency=None, sites=("A", "B", "C")):
    sched = Scheduler()
    metrics = MetricsRecorder()
    net = Network(
        sched,
        RngRegistry(0),
        metrics,
        config=config or NetworkConfig(),
        latency_model=latency or ConstantLatency(1.0),
    )
    inboxes = {s: [] for s in sites}
    for s in sites:
        net.register(s, (lambda sid: (lambda msg: inboxes[sid].append(msg)))(s))
    return sched, net, inboxes, metrics


def test_basic_delivery():
    sched, net, inboxes, _ = make_net()
    net.send("A", "B", Ping(1))
    sched.drain()
    assert [m.payload.n for m in inboxes["B"]] == [1]


def test_unknown_destination_raises():
    _, net, _, _ = make_net()
    with pytest.raises(UnknownSiteError):
        net.send("A", "Z", Ping())


def test_fifo_per_pair_even_with_variable_latency():
    sched, net, inboxes, _ = make_net(
        latency=ExponentialLatency(base=0.1, mean=10.0)
    )
    for i in range(50):
        net.send("A", "B", Ping(i))
    sched.drain()
    assert [m.payload.n for m in inboxes["B"]] == list(range(50))


def test_non_fifo_allows_reordering():
    config = NetworkConfig(fifo_per_pair=False)
    sched, net, inboxes, _ = make_net(
        config=config, latency=ExponentialLatency(base=0.1, mean=10.0)
    )
    for i in range(50):
        net.send("A", "B", Ping(i))
    sched.drain()
    received = [m.payload.n for m in inboxes["B"]]
    assert sorted(received) == list(range(50))
    assert received != list(range(50))


def test_crashed_destination_loses_messages():
    sched, net, inboxes, metrics = make_net()
    net.crash("B")
    net.send("A", "B", Ping())
    sched.drain()
    assert inboxes["B"] == []
    assert metrics.count("messages.lost") == 1
    # Message is still counted as sent (the sender paid for it).
    assert metrics.count("messages.Ping") == 1


def test_crash_in_flight_loses_message():
    sched, net, inboxes, metrics = make_net()
    net.send("A", "B", Ping())
    net.crash("B")  # after send, before delivery
    sched.drain()
    assert inboxes["B"] == []
    assert metrics.count("messages.lost") == 1


def test_recover_restores_delivery():
    sched, net, inboxes, _ = make_net()
    net.crash("B")
    net.recover("B")
    net.send("A", "B", Ping(3))
    sched.drain()
    assert [m.payload.n for m in inboxes["B"]] == [3]


def test_partition_blocks_cross_group_traffic():
    sched, net, inboxes, _ = make_net()
    net.partition({"A"}, {"B", "C"})
    net.send("A", "B", Ping(1))
    net.send("B", "C", Ping(2))
    sched.drain()
    assert inboxes["B"] == []
    assert [m.payload.n for m in inboxes["C"]] == [2]


def test_heal_partition():
    sched, net, inboxes, _ = make_net()
    net.partition({"A"}, {"B"})
    net.heal_partition()
    net.send("A", "B", Ping())
    sched.drain()
    assert len(inboxes["B"]) == 1


def test_implicit_partition_group():
    sched, net, inboxes, _ = make_net()
    # C is not named: it forms its own implicit group.
    net.partition({"A", "B"})
    net.send("A", "C", Ping())
    net.send("A", "B", Ping())
    sched.drain()
    assert inboxes["C"] == []
    assert len(inboxes["B"]) == 1


def test_drop_probability_drops_some():
    config = NetworkConfig(drop_probability=0.5)
    sched, net, inboxes, metrics = make_net(config=config)
    for i in range(200):
        net.send("A", "B", Ping(i))
    sched.drain()
    delivered = len(inboxes["B"])
    assert 0 < delivered < 200
    assert metrics.count("messages.lost") == 200 - delivered


def test_in_flight_tracking():
    sched, net, _, _ = make_net()
    net.send("A", "B", Ping())
    assert len(net.in_flight_messages()) == 1
    sched.drain()
    assert net.in_flight_messages() == []


def test_message_metrics_by_kind():
    sched, net, _, metrics = make_net()
    net.send("A", "B", Ping())
    net.send("B", "A", Ping())
    sched.drain()
    assert metrics.message_count("Ping") == 2
    assert metrics.count("messages.total") == 2
    assert metrics.count("messages.delivered") == 2


def test_uniform_latency_within_bounds():
    rng = RngRegistry(0).stream("x")
    model = UniformLatency(2.0, 5.0)
    for _ in range(100):
        assert 2.0 <= model.sample(rng, "A", "B") <= 5.0


# -- min_cross_latency (per-shard lookahead floors) --------------------------


def test_min_cross_latency_uses_model_floor():
    _, net, _, _ = make_net(latency=UniformLatency(2.5, 9.0))
    assert net.min_cross_latency({"A"}) == 2.5
    assert net.min_cross_latency({"A", "B"}) == 2.5


def test_min_cross_latency_heterogeneous_takes_outbound_minimum():
    from repro.net.latency import ZonedLatency

    # A and B share a zone; C is remote.  A shard containing both zone-0
    # sites only has expensive outbound links, so its floor is the cross
    # band; a split shard still has a cheap intra-zone exit.
    model = ZonedLatency(
        {"A": 0, "B": 0, "C": 1}, intra=(1.0, 3.0), cross=(10.0, 30.0)
    )
    _, net, _, _ = make_net(latency=model)
    assert net.min_cross_latency({"A", "B"}) == 10.0
    assert net.min_cross_latency({"A"}) == 1.0


def test_min_cross_latency_unknown_model_or_no_outside_is_none():
    class Opaque(ExponentialLatency):
        def min_delay(self, src, dst):
            return None

    _, net, _, _ = make_net(latency=Opaque(base=1.0))
    assert net.min_cross_latency({"A"}) is None
    _, net, _, _ = make_net(latency=UniformLatency(2.0, 4.0))
    assert net.min_cross_latency({"A", "B", "C"}) is None
