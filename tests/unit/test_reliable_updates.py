"""At-least-once update channel: sequencing, acks, retransmission, repair."""

import pytest

from repro import GcConfig, Simulation, SimulationConfig
from repro.gc.update import UpdatePayload
from repro.metrics import names
from repro.net.faults import FaultPlan
from repro.net.reliability import DedupWindow


def make_sim(gc=None, plan=None, seed=1):
    sim = Simulation.create(
        SimulationConfig(seed=seed, gc=gc or GcConfig()), fault_plan=plan
    )
    sim.add_sites(["A", "B"], auto_gc=False)
    return sim


def empty_delta():
    return UpdatePayload(distances=(), removals=())


# -- DedupWindow -------------------------------------------------------------


def test_dedup_window_exact_under_fifo():
    window = DedupWindow()
    assert not window.seen(1)
    assert not window.seen(2)
    assert window.seen(2)
    assert window.seen(1)


def test_dedup_window_exact_with_gaps():
    window = DedupWindow()
    assert not window.seen(3)
    assert not window.seen(1)
    assert window.seen(3)
    assert not window.seen(2)
    assert window.seen(1) and window.seen(2)
    assert not window.pending_gaps


# -- the happy path ----------------------------------------------------------


def test_update_is_sequenced_acked_and_timer_cancelled():
    sim = make_sim()
    sender, receiver = sim.site("A"), sim.site("B")
    sender._send_update("B", empty_delta())
    sender._send_update("B", empty_delta())
    assert sorted(sender._pending_updates["B"]) == [1, 2]
    sim.settle()
    # Both acks arrived: nothing pending, nothing retransmitted.
    assert not sender._pending_updates
    assert sender._update_seq["B"] == 2
    assert sim.metrics.count(names.UPDATE_RETRANSMITS) == 0
    assert receiver._update_dedup["A"].high_water == 2


def test_unreliable_mode_is_a_plain_send():
    sim = make_sim(gc=GcConfig(reliable_updates=False))
    sender = sim.site("A")
    sender._send_update("B", empty_delta())
    sim.settle()
    assert not sender._pending_updates
    assert sim.metrics.count(names.msg_sent("UpdatePayload")) == 1
    assert sim.metrics.count(names.msg_sent("UpdateAck")) == 0


# -- duplicates --------------------------------------------------------------


def test_duplicated_update_is_suppressed_but_reacked():
    from repro.net.faults import LinkFault

    plan = FaultPlan(
        links=(
            LinkFault(
                src="A", dst="B", duplicate_probability=1.0, duplicate_lag=2.0
            ),
        )
    )
    sim = make_sim(plan=plan)
    sender = sim.site("A")
    sender._send_update("B", empty_delta())
    sim.settle()
    assert sim.metrics.count(names.dup_suppressed("UpdatePayload")) == 1
    # Both deliveries were acked (either ack may be the one that survives a
    # lossy link), and the first ack already cleared the pending entry.
    assert sim.metrics.count(names.msg_sent("UpdateAck")) == 2
    assert not sender._pending_updates


# -- loss and retransmission -------------------------------------------------


def test_lost_update_is_retransmitted_as_full_until_acked():
    gc = GcConfig(update_retransmit_timeout=10.0)
    plan = FaultPlan.loss(1.0, end=25.0, src="A", dst="B")
    sim = make_sim(gc=gc, plan=plan)
    sender = sim.site("A")
    sender._send_update("B", empty_delta())
    # t=0 and t=10 sends die in the window; the t=30 retransmission lands.
    sim.run_until(100.0)
    sim.settle()
    assert not sender._pending_updates
    assert sim.metrics.count(names.UPDATE_RETRANSMITS) == 2
    assert sim.metrics.count(names.UPDATE_RETRANSMITS_ABANDONED) == 0
    assert sim.metrics.count(names.msg_dropped_kind("UpdatePayload")) == 2


def test_retransmit_backoff_doubles_and_caps():
    sim = make_sim(gc=GcConfig(update_retransmit_timeout=10.0))
    sender = sim.site("A")
    delays = []
    original = sender.scheduler.schedule

    def spying_schedule(delay, fn, **kwargs):
        if kwargs.get("label", "").startswith("update-retransmit"):
            delays.append(delay)
        return original(delay, fn, **kwargs)

    sender.scheduler.schedule = spying_schedule
    for attempts in range(6):
        sender._send_update("B", empty_delta(), attempts=attempts)
    sender.scheduler.schedule = original
    sim.settle()
    assert delays == [10.0, 20.0, 40.0, 80.0, 80.0, 80.0]  # capped at 8x


def test_full_update_absorbs_pending_lower_sequences():
    plan = FaultPlan.loss(1.0, src="A", dst="B")  # nothing ever delivers
    sim = make_sim(plan=plan)
    sender = sim.site("A")
    sender._send_update("B", empty_delta())
    sender._send_update("B", empty_delta())
    assert sorted(sender._pending_updates["B"]) == [1, 2]
    sender._send_update("B", sender._build_full_update("B"))
    # The full state transfer supersedes both unacked deltas.
    assert sorted(sender._pending_updates["B"]) == [3]


# -- abandonment and desynced-peer repair ------------------------------------


def test_abandoned_chain_marks_peer_and_next_tick_repairs_it():
    gc = GcConfig(update_retransmit_timeout=10.0, update_retransmit_limit=5)
    plan = FaultPlan.loss(1.0, end=400.0, src="A", dst="B")
    sim = make_sim(gc=gc, plan=plan)
    sender = sim.site("A")
    sender._send_update("B", empty_delta())
    # Chain: sends at t=0,10,30,70,150,230; gives up at t=310 (attempts > 5).
    sim.run_until(350.0)
    assert sim.metrics.count(names.UPDATE_RETRANSMITS_ABANDONED) == 1
    assert sender._desynced_peers == {"B"}
    assert not sender._pending_updates
    # Next GC tick (after the window heals) resends a full update even though
    # the incremental planner has nothing new to trace.
    sim.run_until(450.0)
    sender.run_local_trace()
    sim.settle()
    assert not sender._desynced_peers
    assert not sender._pending_updates
    assert sim.metrics.count(names.msg_delivered_kind("UpdatePayload")) == 1


def test_crashed_sender_stops_retransmitting():
    gc = GcConfig(update_retransmit_timeout=10.0)
    plan = FaultPlan.loss(1.0, end=100.0, src="A", dst="B")
    sim = make_sim(gc=gc, plan=plan)
    sender = sim.site("A")
    sender._send_update("B", empty_delta())
    sim.run_until(5.0)
    sender.crash()
    sim.run_until(200.0)
    sim.settle()
    assert sim.metrics.count(names.UPDATE_RETRANSMITS) == 0
    assert sim.metrics.count(names.UPDATE_RETRANSMITS_ABANDONED) == 0
