"""Unit tests for the canonical outset store (section 5.2 optimizations)."""

from repro.core.backinfo.outsets import OutsetStore
from repro.ids import ObjectId


def oid(n):
    return ObjectId("X", n)


def test_empty_is_interned_at_zero():
    store = OutsetStore()
    assert store.get(OutsetStore.EMPTY) == frozenset()
    assert store.intern(frozenset()) == OutsetStore.EMPTY


def test_intern_is_idempotent():
    store = OutsetStore()
    members = frozenset({oid(1), oid(2)})
    first = store.intern(members)
    second = store.intern(members)
    assert first == second
    assert store.get(first) == members


def test_add_creates_superset():
    store = OutsetStore()
    a = store.add(OutsetStore.EMPTY, oid(1))
    ab = store.add(a, oid(2))
    assert store.get(ab) == {oid(1), oid(2)}


def test_add_existing_member_is_identity():
    store = OutsetStore()
    a = store.add(OutsetStore.EMPTY, oid(1))
    assert store.add(a, oid(1)) == a


def test_union_with_empty_is_identity():
    store = OutsetStore()
    a = store.add(OutsetStore.EMPTY, oid(1))
    assert store.union(a, OutsetStore.EMPTY) == a
    assert store.union(OutsetStore.EMPTY, a) == a
    assert store.unions_computed == 0


def test_union_of_subsets_reuses_superset_id():
    store = OutsetStore()
    a = store.intern(frozenset({oid(1)}))
    ab = store.intern(frozenset({oid(1), oid(2)}))
    assert store.union(a, ab) == ab


def test_union_is_memoized_and_symmetric():
    store = OutsetStore()
    a = store.intern(frozenset({oid(1)}))
    b = store.intern(frozenset({oid(2)}))
    first = store.union(a, b)
    assert store.unions_computed == 1
    second = store.union(b, a)  # reversed order hits the memo
    assert second == first
    assert store.union_memo_hits == 1
    assert store.unions_computed == 1
    assert store.get(first) == {oid(1), oid(2)}


def test_sharing_one_copy_per_distinct_set():
    store = OutsetStore()
    a1 = store.intern(frozenset({oid(1), oid(2)}))
    a2 = store.union(store.intern(frozenset({oid(1)})), store.intern(frozenset({oid(2)})))
    assert a1 == a2
    # empty + {1} + {2} + {1,2} = 4 distinct sets stored.
    assert len(store) == 4


def test_storage_units_counts_elements():
    store = OutsetStore()
    store.intern(frozenset({oid(1), oid(2)}))
    store.intern(frozenset({oid(3)}))
    assert store.storage_units() == 3
