"""Unit tests for the metrics recorder and snapshots."""

from repro.metrics import MetricsRecorder


def test_incr_and_count():
    metrics = MetricsRecorder()
    metrics.incr("a")
    metrics.incr("a", 4)
    assert metrics.count("a") == 5
    assert metrics.count("missing") == 0


def test_prefix_queries():
    metrics = MetricsRecorder()
    metrics.incr("gc.x", 2)
    metrics.incr("gc.y", 3)
    metrics.incr("net.z", 7)
    assert metrics.counts_with_prefix("gc.") == {"gc.x": 2, "gc.y": 3}
    assert metrics.total_with_prefix("gc.") == 5


def test_record_message_aggregates():
    metrics = MetricsRecorder()
    metrics.record_message("Ping", units=3)
    metrics.record_message("Ping")
    metrics.record_message("Pong")
    assert metrics.message_count("Ping") == 2
    assert metrics.count("messages.total") == 3
    assert metrics.count("messages.units") == 5


def test_observations_and_stats():
    metrics = MetricsRecorder()
    for value in (1.0, 2.0, 6.0):
        metrics.observe("series", value)
    assert metrics.observations("series") == [1.0, 2.0, 6.0]
    assert metrics.observation_mean("series") == 3.0
    assert metrics.observation_max("series") == 6.0
    assert metrics.observation_mean("empty") == 0.0
    assert metrics.observation_max("empty") == 0.0


def test_snapshot_diff_only_nonzero():
    metrics = MetricsRecorder()
    metrics.incr("a", 1)
    before = metrics.snapshot()
    metrics.incr("a", 2)
    metrics.incr("b", 5)
    metrics.incr("untouched", 0)
    delta = metrics.snapshot().diff(before)
    assert delta == {"a": 2, "b": 5}


def test_snapshot_is_immutable_view():
    metrics = MetricsRecorder()
    metrics.incr("a")
    snap = metrics.snapshot()
    metrics.incr("a")
    assert snap.get("a") == 1
    assert metrics.count("a") == 2


def test_reset_clears_everything():
    metrics = MetricsRecorder()
    metrics.incr("a")
    metrics.observe("s", 1.0)
    metrics.reset()
    assert metrics.count("a") == 0
    assert metrics.observations("s") == []
