"""Remaining small-surface tests: latency model validation, remote-copy
case 2, and heap sweep properties."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.net.latency import ConstantLatency, ExponentialLatency, UniformLatency
from repro.sim.rng import RngRegistry
from repro.store.heap import Heap
from repro.workloads import GraphBuilder

from ..conftest import make_sim


# -- latency models -------------------------------------------------------------


@pytest.mark.parametrize(
    "factory",
    [
        lambda: ConstantLatency(-1.0),
        lambda: UniformLatency(-1.0, 2.0),
        lambda: UniformLatency(5.0, 2.0),
        lambda: ExponentialLatency(base=-0.1),
        lambda: ExponentialLatency(mean=0.0),
    ],
)
def test_latency_validation(factory):
    with pytest.raises(ConfigError):
        factory()


def test_exponential_latency_at_least_base():
    rng = RngRegistry(0).stream("lat")
    model = ExponentialLatency(base=2.5, mean=1.0)
    assert all(model.sample(rng, "A", "B") >= 2.5 for _ in range(200))


def test_constant_latency_is_constant():
    rng = RngRegistry(0).stream("lat")
    model = ConstantLatency(3.0)
    assert {model.sample(rng, "A", "B") for _ in range(10)} == {3.0}


# -- remote copy case 2 (section 6.1.2) ----------------------------------------------


def test_remote_copy_case2_clean_outref_no_insert():
    """Y already holds a *clean* outref for z: no insert, no barrier work --
    just the unpin ack back to the sender."""
    sim = make_sim(sites=("X", "Y", "Z"))
    b = GraphBuilder(sim)
    z_obj = b.obj("Z", "z")
    x_holder = b.obj("X", "xh", root=True)
    y_holder = b.obj("Y", "yh", root=True)
    b.link(x_holder, z_obj)
    b.link(y_holder, z_obj)   # Y's clean outref exists already
    y_dest = b.obj("Y", "yd", root=True)
    before = sim.metrics.snapshot()
    sim.site("X").mutator_send_ref("Y", b["z"], y_dest)
    sim.settle()
    delta = sim.metrics.snapshot().diff(before)
    assert delta.get("messages.InsertRequest", 0) == 0
    assert delta.get("messages.UnpinRequest", 0) == 1
    assert sim.site("X").outrefs.require(b["z"]).pin_count == 0
    assert sim.site("Y").heap.get(y_dest).holds_ref(b["z"])


# -- heap sweep properties -----------------------------------------------------------


@given(
    st.integers(min_value=0, max_value=30),
    st.sets(st.integers(0, 29)),
)
@settings(max_examples=100, deadline=None)
def test_sweep_removes_exactly_the_complement(n_objects, live_indices):
    heap = Heap("P")
    objects = [heap.alloc() for _ in range(n_objects)]
    live = {obj.oid for index, obj in enumerate(objects) if index in live_indices}
    dead = heap.sweep(live)
    assert set(dead) == {obj.oid for obj in objects} - live
    assert set(heap.object_ids()) == live
    assert heap.objects_collected == len(dead)


@given(st.integers(min_value=1, max_value=20))
@settings(max_examples=50, deadline=None)
def test_alloc_serials_never_reused_after_sweep(n_objects):
    heap = Heap("P")
    first_batch = [heap.alloc().oid for _ in range(n_objects)]
    heap.sweep(set())
    second_batch = [heap.alloc().oid for _ in range(n_objects)]
    assert not set(first_batch) & set(second_batch)


# -- public API hygiene -----------------------------------------------------------------


def test_every_public_module_has_a_docstring():
    import importlib
    import pkgutil

    import repro

    missing = []
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        module = importlib.import_module(info.name)
        if not (module.__doc__ or "").strip():
            missing.append(info.name)
    assert not missing, f"modules without docstrings: {missing}"


def test_all_payload_classes_have_unique_kinds():
    """Metrics and the comparison driver key on payload class names; a
    duplicate would silently merge two protocols' counters."""
    import importlib
    import pkgutil

    import repro
    from repro.net.message import Payload

    kinds = {}
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        module = importlib.import_module(info.name)
        for name in dir(module):
            attr = getattr(module, name)
            if (
                isinstance(attr, type)
                and issubclass(attr, Payload)
                and attr is not Payload
            ):
                existing = kinds.get(attr.kind())
                if existing is not None and existing is not attr:
                    raise AssertionError(
                        f"duplicate payload kind {attr.kind()!r}: "
                        f"{existing.__module__} vs {attr.__module__}"
                    )
                kinds[attr.kind()] = attr
    assert len(kinds) >= 25  # the full protocol surface is registered


def test_builtin_models_expose_min_delay_floors():
    assert ConstantLatency(2.0).min_delay("A", "B") == 2.0
    assert UniformLatency(1.5, 5.0).min_delay("A", "B") == 1.5
    assert ExponentialLatency(base=0.5).min_delay("A", "B") == 0.5


def test_min_delay_default_is_unknown():
    from repro.net.latency import LatencyModel

    class Opaque(LatencyModel):
        def sample(self, rng, src, dst):
            return 1.0

    assert Opaque().min_delay("A", "B") is None


def test_zoned_latency_bands_and_floors():
    import random

    from repro.net.latency import ZonedLatency

    model = ZonedLatency(
        {"A": 0, "B": 0, "C": 1}, intra=(1.0, 3.0), cross=(10.0, 30.0)
    )
    assert model.min_delay("A", "B") == 1.0
    assert model.min_delay("B", "C") == 10.0
    # Unlisted sites get a private zone, so everything they touch is cross.
    assert model.min_delay("A", "Z") == 10.0
    rng = random.Random(7)
    for _ in range(50):
        assert 1.0 <= model.sample(rng, "A", "B") <= 3.0
        assert 10.0 <= model.sample(rng, "A", "C") <= 30.0


def test_zoned_latency_accepts_zone_callable():
    from repro.net.latency import ZonedLatency

    model = ZonedLatency(
        lambda site: 0 if site < "m" else 1,
        intra=(2.0, 4.0),
        cross=(8.0, 16.0),
    )
    assert model.min_delay("a", "b") == 2.0
    assert model.min_delay("a", "z") == 8.0


@pytest.mark.parametrize(
    "bands",
    [
        dict(intra=(-1.0, 2.0)),
        dict(intra=(5.0, 2.0)),
        dict(cross=(-0.5, 1.0)),
        dict(cross=(9.0, 3.0)),
    ],
)
def test_zoned_latency_validation(bands):
    from repro.net.latency import ZonedLatency

    with pytest.raises(ConfigError):
        ZonedLatency({}, **bands)
