"""Flat-graph heap mirror: interning, free-list, dangling slots, kernel twin.

The heap keeps a dense integer-index mirror of the local object graph
(``flat_kernel``): interned ids, append-only adjacency arrays, a free-list
guarded by per-slot adjacency refcounts so an index is never reused while a
dangling reference still points at it.  ``check_flat_mirror`` is the
assert-based validator these tests lean on after every mutation batch.
"""

import random

from repro import GcConfig
from repro.core.distance import trace_clean_phase, trace_clean_phase_flat
from repro.gc.inrefs import InrefTable
from repro.gc.outrefs import OutrefTable
from repro.ids import ObjectId
from repro.store.heap import Heap


def test_mirror_tracks_alloc_link_unlink():
    heap = Heap("P")
    a = heap.alloc(persistent_root=True)
    b = heap.alloc()
    c = heap.alloc()
    a.add_ref(b.oid)
    b.add_ref(c.oid)
    b.add_ref(c.oid)  # duplicate edge: mirrored twice
    heap.check_flat_mirror()
    b.remove_ref(c.oid)  # one copy removed, one left
    heap.check_flat_mirror()
    idx, alive, succ_local, _, _, _ = heap.flat_graph()
    assert succ_local[idx[b.oid]] == [idx[c.oid]]
    assert all(alive[i] for i in idx.values())


def test_remote_refs_are_not_interned():
    heap = Heap("P")
    a = heap.alloc()
    remote = ObjectId("Q", 0)
    a.add_ref(remote)
    idx, _, succ_local, succ_remote, _, _ = heap.flat_graph()
    assert remote not in idx
    assert succ_local[idx[a.oid]] == []
    assert succ_remote[idx[a.oid]] == [remote]
    heap.check_flat_mirror()


def test_swept_slot_is_reused_when_nothing_dangles():
    heap = Heap("P")
    doomed = heap.alloc()
    doomed_idx = doomed.index
    heap.sweep_ids([doomed.oid])
    heap.check_flat_mirror()
    fresh = heap.alloc()
    assert fresh.index == doomed_idx  # free-list handed the slot back
    assert fresh.oid != doomed.oid  # but ids are never reused
    heap.check_flat_mirror()


def test_dangling_adjacency_pins_the_slot():
    heap = Heap("P")
    holder = heap.alloc(persistent_root=True)
    target = heap.alloc()
    holder.add_ref(target.oid)
    target_idx = target.index
    # Sweep the target while holder still references it: the id dies but the
    # slot must not be reused -- holder's adjacency entry still points there.
    heap.sweep_ids([target.oid])
    heap.check_flat_mirror()
    fresh = heap.alloc()
    assert fresh.index != target_idx
    heap.check_flat_mirror()
    # Dropping the dangling reference finally releases the slot.
    holder.remove_ref(target.oid)
    heap.check_flat_mirror()
    reused = heap.alloc()
    assert reused.index == target_idx
    heap.check_flat_mirror()


def test_sweep_of_linked_pair_releases_both_slots():
    heap = Heap("P")
    a = heap.alloc()
    b = heap.alloc()
    slots = {a.index, b.index}
    a.add_ref(b.oid)
    b.add_ref(a.oid)  # local cycle
    heap.sweep_ids([a.oid, b.oid])
    heap.check_flat_mirror()
    assert len(heap) == 0
    # Both slots come back (retirement cleared the mutual adjacency).
    c, d = heap.alloc(), heap.alloc()
    assert {c.index, d.index} == slots
    heap.check_flat_mirror()


def _random_mutations(heap, rng, oids):
    for _ in range(rng.randrange(8, 24)):
        op = rng.random()
        if op < 0.4 or len(oids) < 2:
            obj = heap.alloc(persistent_root=rng.random() < 0.2)
            oids.append(obj.oid)
        elif op < 0.7:
            holder, target = rng.choice(oids), rng.choice(oids)
            if heap.contains(holder):
                heap.get(holder).add_ref(target)
        elif op < 0.85:
            holder = rng.choice(oids)
            if heap.contains(holder):
                heap.get(holder).add_ref(ObjectId("Q", rng.randrange(4)))
        else:
            victim = rng.choice(oids)
            if heap.contains(victim):
                heap.sweep_ids([victim])


def test_flat_kernel_is_byte_identical_to_legacy_kernel():
    """Random churn; both kernels must agree on clean sets, distances, and
    even the insertion order of the resulting distance dict."""
    rng = random.Random(42)
    config = GcConfig()
    for trial in range(25):
        heap = Heap("P")
        inrefs = InrefTable("P", config.suspicion_threshold, 0)
        oids = []
        _random_mutations(heap, rng, oids)
        for oid in rng.sample(oids, min(3, len(oids))):
            if heap.contains(oid):
                inrefs.ensure(oid, source="R", distance=rng.randrange(1, 8))
        roots = [(oid, 0) for oid in sorted(heap.persistent_roots)]
        roots.extend(
            (entry.target, entry.distance)
            for entry in inrefs.entries()
            if heap.contains(entry.target)
        )
        variable = [ObjectId("Q", 0)] if rng.random() < 0.3 else []
        legacy = trace_clean_phase(heap, roots, variable_outrefs=variable)
        flat = trace_clean_phase_flat(heap, roots, variable_outrefs=variable)
        assert legacy.clean_objects == flat.clean_objects
        assert legacy.outref_distances == flat.outref_distances
        assert list(legacy.outref_distances) == list(flat.outref_distances)
        assert legacy.clean_variable_outrefs == flat.clean_variable_outrefs
        assert legacy.objects_scanned == flat.objects_scanned
        assert legacy.edges_examined == flat.edges_examined
        heap.check_flat_mirror()
