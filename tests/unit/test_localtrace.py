"""Unit tests for the local collector (sections 2, 3, 5)."""

import dataclasses

from repro import GcConfig
from repro.gc.localtrace import LocalCollector
from repro.gc.inrefs import InrefTable
from repro.gc.outrefs import OutrefTable
from repro.ids import ObjectId
from repro.metrics import MetricsRecorder
from repro.store.heap import Heap


def make_collector(threshold=4, algorithm="bottomup"):
    config = GcConfig(suspicion_threshold=threshold, backinfo_algorithm=algorithm)
    heap = Heap("Q")
    inrefs = InrefTable("Q", threshold, config.initial_back_threshold)
    outrefs = OutrefTable("Q", config.initial_back_threshold)
    collector = LocalCollector(heap, inrefs, outrefs, config, metrics=MetricsRecorder())
    return collector


def test_sweeps_unreachable_objects():
    c = make_collector()
    root = c.heap.alloc(persistent_root=True)
    kept = c.heap.alloc()
    root.add_ref(kept.oid)
    lost = c.heap.alloc()
    result = c.run()
    assert lost.oid in result.swept
    assert c.heap.contains(kept.oid)


def test_inrefs_are_roots():
    c = make_collector()
    held = c.heap.alloc()
    c.inrefs.ensure(held.oid, source="P", distance=1)
    result = c.run()
    assert held.oid not in result.swept


def test_garbage_flagged_inref_is_not_a_root():
    c = make_collector()
    held = c.heap.alloc()
    entry = c.inrefs.ensure(held.oid, source="P", distance=9)
    entry.garbage = True
    result = c.run()
    assert held.oid in result.swept
    # The entry itself survives for referential integrity (section 4.5).
    assert held.oid in c.inrefs


def test_variable_roots_keep_objects():
    c = make_collector()
    pinned = c.heap.alloc()
    c.heap.pin_variable(pinned.oid)
    result = c.run()
    assert pinned.oid not in result.swept


def test_outref_distance_from_persistent_root():
    c = make_collector()
    root = c.heap.alloc(persistent_root=True)
    remote = ObjectId("R", 0)
    root.add_ref(remote)
    c.outrefs.ensure(remote)
    result = c.run()
    entry = c.outrefs.require(remote)
    assert entry.distance == 1
    assert entry.is_clean
    assert result.updates_by_site["R"].distances == ((remote, 1),)


def test_outref_distance_from_inref_chain():
    c = make_collector(threshold=4)
    held = c.heap.alloc()
    remote = ObjectId("R", 0)
    held.add_ref(remote)
    c.inrefs.ensure(held.oid, source="P", distance=3)
    c.outrefs.ensure(remote)
    c.run()
    assert c.outrefs.require(remote).distance == 4
    assert c.outrefs.require(remote).is_clean  # 3 <= threshold: clean trace


def test_suspected_outref_gets_inset_and_distance():
    c = make_collector(threshold=4)
    held = c.heap.alloc()
    remote = ObjectId("R", 0)
    held.add_ref(remote)
    c.inrefs.ensure(held.oid, source="P", distance=7)  # suspected
    c.outrefs.ensure(remote)
    c.run()
    entry = c.outrefs.require(remote)
    assert not entry.is_clean
    assert entry.inset == {held.oid}
    assert entry.distance == 8
    inref_entry = c.inrefs.require(held.oid)
    assert inref_entry.outset == {remote}


def test_untraced_outref_is_trimmed_and_reported():
    c = make_collector()
    remote = ObjectId("R", 0)
    c.outrefs.ensure(remote)  # nothing in the heap references it
    result = c.run()
    assert remote not in c.outrefs
    # In delta mode the first trace is a full state transfer: the trim is
    # reported by *omission* (receiver-side prune), not an explicit removal.
    payload = result.updates_by_site["R"]
    assert payload.full
    assert remote not in dict(payload.distances)
    # A receiver holding the inref actually drops this source.
    from repro.gc.inrefs import InrefTable
    from repro.gc.update import apply_update

    peer = InrefTable("R", 4, 0)
    peer.ensure(remote, source="Q", distance=1)
    apply_update(peer, "Q", payload)
    # Sole source pruned away -> the inref itself dies (acyclic garbage).
    assert remote not in peer


def test_untraced_outref_trim_travels_as_delta_removal():
    # Past the first (periodic-full) trace, a trimmed-but-never-shipped
    # outref must still produce an explicit delta removal: the peer learned
    # of us as a source through the insert protocol, not through updates.
    c = make_collector()
    c.run()  # trace 1: periodic full (anchors the shipped state)
    remote = ObjectId("R", 0)
    c.outrefs.ensure(remote)
    result = c.run()
    assert remote not in c.outrefs
    payload = result.updates_by_site["R"]
    assert not payload.full
    assert payload.removals == (remote,)


def test_pinned_outref_survives_trim():
    c = make_collector()
    remote = ObjectId("R", 0)
    c.outrefs.ensure(remote).pin()
    result = c.run()
    assert remote in c.outrefs
    assert not result.removals or remote not in result.removals


def test_variable_outref_survives_and_is_clean():
    c = make_collector(threshold=4)
    remote = ObjectId("R", 0)
    c.outrefs.ensure(remote, clean=False)
    c.run(variable_outrefs=[remote])
    entry = c.outrefs.require(remote)
    assert entry.is_clean
    assert entry.distance == 1


def test_distance_not_resent_when_unchanged():
    c = make_collector()
    root = c.heap.alloc(persistent_root=True)
    remote = ObjectId("R", 0)
    root.add_ref(remote)
    c.outrefs.ensure(remote)
    first = c.run()
    second = c.run()
    assert "R" in first.updates_by_site
    assert "R" not in second.updates_by_site


def test_mixed_clean_and_suspected_reachability():
    """An object reachable from both a clean and a suspected inref is clean,
    and the suspected inref's outset stops at it."""
    c = make_collector(threshold=4)
    shared = c.heap.alloc()
    remote = ObjectId("R", 0)
    shared.add_ref(remote)
    suspect_head = c.heap.alloc()
    suspect_head.add_ref(shared.oid)
    c.inrefs.ensure(shared.oid, source="P", distance=2)  # clean
    c.inrefs.ensure(suspect_head.oid, source="S", distance=9)  # suspected
    c.outrefs.ensure(remote)
    c.run()
    entry = c.outrefs.require(remote)
    assert entry.is_clean
    assert c.inrefs.require(suspect_head.oid).outset == frozenset()


def test_barrier_clean_inref_traced_as_clean_root():
    c = make_collector(threshold=4)
    held = c.heap.alloc()
    remote = ObjectId("R", 0)
    held.add_ref(remote)
    entry = c.inrefs.ensure(held.oid, source="P", distance=9)
    entry.barrier_clean = True
    c.outrefs.ensure(remote, clean=False)
    c.run()
    out = c.outrefs.require(remote)
    assert out.is_clean
    assert out.distance == 10  # distance still propagates the big estimate
    # The barrier flag expires with the trace.
    assert not c.inrefs.require(held.oid).barrier_clean


def test_commit_replays_barrier_on_new_copy():
    c = make_collector(threshold=4)
    held = c.heap.alloc()
    remote = ObjectId("R", 0)
    held.add_ref(remote)
    c.inrefs.ensure(held.oid, source="P", distance=9)
    c.outrefs.ensure(remote, clean=False)
    result = c.compute()
    c.commit(result, replay_barrier_inrefs=[held.oid])
    assert c.inrefs.require(held.oid).barrier_clean
    assert c.outrefs.require(remote).barrier_clean


def test_objects_allocated_in_window_survive_commit():
    c = make_collector()
    result = c.compute()
    newborn = c.heap.alloc()  # allocated mid-window
    c.commit(result)
    assert c.heap.contains(newborn.oid)


def test_outref_created_in_window_survives_commit():
    c = make_collector()
    result = c.compute()
    late = ObjectId("R", 9)
    c.outrefs.ensure(late, clean=True)
    c.commit(result)
    assert late in c.outrefs


def test_independent_algorithm_config_selected():
    c = make_collector(algorithm="independent")
    held = c.heap.alloc()
    remote = ObjectId("R", 0)
    held.add_ref(remote)
    c.inrefs.ensure(held.oid, source="P", distance=9)
    c.outrefs.ensure(remote)
    c.run()
    assert c.outrefs.require(remote).inset == {held.oid}


def test_suspected_cycle_objects_survive_sweep():
    c = make_collector(threshold=4)
    a, b = c.heap.alloc(), c.heap.alloc()
    a.add_ref(b.oid)
    b.add_ref(a.oid)
    c.inrefs.ensure(a.oid, source="P", distance=9)
    result = c.run()
    assert not result.swept
    assert c.heap.contains(a.oid) and c.heap.contains(b.oid)


# -- quiet-tick prediction (the parallel planner's lookahead source) ---------


def make_predicting_collector(**gc_overrides):
    config = GcConfig(full_trace_every_n=4, full_update_period=2, **gc_overrides)
    heap = Heap("Q")
    inrefs = InrefTable(
        "Q", config.suspicion_threshold, config.initial_back_threshold
    )
    outrefs = OutrefTable("Q", config.initial_back_threshold)
    return LocalCollector(
        heap, inrefs, outrefs, config, metrics=MetricsRecorder()
    )


def test_predict_quiet_ticks_needs_a_cached_trace():
    c = make_predicting_collector()
    assert c.predict_quiet_ticks() == 0


def test_predict_quiet_ticks_extends_across_silent_forced_fulls():
    c = make_predicting_collector()
    root = c.heap.alloc(persistent_root=True)
    kept = c.heap.alloc()
    root.add_ref(kept.oid)
    c.run()
    # Budget of 4 incremental skips, then one forced full that (in delta
    # mode, with the outref epoch unchanged) ships nothing and is not the
    # periodic refresh (full_traces_run would be 2, refresh lands on odd
    # counts under full_update_period=2), buying 1 + 4 more quiet ticks.
    assert c.predict_quiet_ticks() == 4 + (1 + 4)


def test_predict_quiet_ticks_stops_at_budget_without_delta_mode():
    c = make_predicting_collector(delta_updates=False)
    c.heap.alloc(persistent_root=True)
    c.run()
    # Legacy updates: a forced full always rebuilds the full snapshot and
    # may send, so prediction cannot see past the incremental budget.
    assert c.predict_quiet_ticks() == 4


def test_predict_quiet_ticks_zero_after_any_epoch_change():
    c = make_predicting_collector()
    c.heap.alloc(persistent_root=True)
    c.run()
    assert c.predict_quiet_ticks() > 0
    c.heap.alloc()  # heap mutation epoch moves; the cache no longer applies
    assert c.predict_quiet_ticks() == 0


def test_predict_quiet_ticks_zero_when_variable_roots_changed():
    c = make_predicting_collector()
    held = c.heap.alloc(persistent_root=True)
    c.run()
    assert c.predict_quiet_ticks() > 0
    assert c.predict_quiet_ticks(variable_outrefs=[held.oid]) == 0


def test_predict_quiet_ticks_zero_without_incremental_traces():
    c = make_predicting_collector(incremental_traces=False)
    c.heap.alloc(persistent_root=True)
    c.run()
    assert c.predict_quiet_ticks() == 0
