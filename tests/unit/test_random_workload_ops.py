"""Focused tests for the random workload's individual operations and the
mutator's hop-failure handling."""

import pytest

from repro.analysis import Oracle
from repro.mutator import Mutator, RandomWorkload, WorkloadConfig
from repro.workloads import GraphBuilder

from ..conftest import make_sim


def setup():
    sim = make_sim(sites=("P", "Q"))
    b = GraphBuilder(sim)
    home = b.obj("P", "home", root=True)
    local = b.obj("P", "local")
    remote = b.obj("Q", "remote")
    b.link(home, local)
    b.link(home, remote)
    workload = RandomWorkload(sim, "w", home)
    return sim, b, workload


def test_hop_to_crashed_site_times_out_and_mutator_recovers():
    sim, b, _ = setup()
    mutator = Mutator(sim, "m", b["home"], hop_timeout=20.0)
    sim.site("Q").crash()
    mutator.traverse(b["remote"])
    assert mutator.in_transit
    sim.run_for(50.0)
    assert not mutator.in_transit
    assert mutator.position == b["home"]  # stayed put
    assert mutator.hops_failed == 1
    # Still operational: a local traverse works.
    mutator.traverse(b["local"])
    assert mutator.position == b["local"]
    Oracle(sim).check_safety()


def test_hop_timeout_cancelled_on_arrival():
    sim, b, _ = setup()
    mutator = Mutator(sim, "m", b["home"], hop_timeout=1000.0)
    mutator.traverse(b["remote"])
    sim.settle()
    assert mutator.position == b["remote"]
    sim.run_for(2000.0)  # the stale timer must not fire destructively
    assert mutator.hops_failed == 0
    assert mutator.position == b["remote"]


def test_when_arrived_fires_on_failed_hop_too():
    sim, b, _ = setup()
    mutator = Mutator(sim, "m", b["home"], hop_timeout=20.0)
    sim.site("Q").crash()
    fired = []
    mutator.traverse(b["remote"])
    mutator.when_arrived(lambda: fired.append(mutator.position))
    sim.run_for(50.0)
    assert fired == [b["home"]]


def test_op_stash_evicts_oldest():
    sim, b, workload = setup()
    workload.config = WorkloadConfig(max_stash=2)
    for _ in range(5):
        workload._op_stash()
    assert len(workload._stash_names) <= 2
    # The surviving stashes resolve.
    for name in workload._stash_names:
        workload.mutator.get_variable(name)


def test_op_write_stash_without_stash_is_noop():
    sim, b, workload = setup()
    before = workload.mutator.current_refs()
    workload._op_write_stash()
    assert workload.mutator.current_refs() == before


def test_op_remote_copy_uses_stashed_remote_holder():
    sim, b, workload = setup()
    workload.mutator.set_variable("stash0", b["remote"])
    workload._stash_names.append("stash0")
    workload._op_remote_copy()
    sim.settle()
    # Some reference of home was copied into the remote object.
    copied = sim.site("Q").heap.get(b["remote"]).refs
    assert copied
    Oracle(sim).check_safety()


def test_op_delete_and_alloc():
    sim, b, workload = setup()
    workload._op_alloc()
    heap = sim.site("P").heap
    assert len(heap.get(b["home"]).refs) == 3  # local, remote, newborn
    before = len(heap.get(b["home"]).refs)
    workload._op_delete()
    assert len(heap.get(b["home"]).refs) == before - 1


def test_go_home_when_current_object_collected():
    sim, b, workload = setup()
    mutator = workload.mutator
    mutator.traverse(b["local"])
    # Cut 'local' loose and force-collect it out from under the mutator by
    # dropping its pin (simulating another app component freeing it).
    sim.site("P").mutator_remove_ref(b["home"], b["local"])
    sim.site("P").heap.unpin_variable(b["local"])
    sim.site("P").run_local_trace()
    assert mutator.current_object() is None
    workload._random_op()  # must not raise; respawns at home
    assert mutator.position == b["home"]


def test_workload_on_crashed_home_site_is_inert():
    sim, b, workload = setup()
    sim.site("P").crash()
    workload.start()
    sim.run_for(200.0)
    # No exceptions; ops executed but all degraded to no-ops/go-home tries.
    assert workload.mutator.position == b["home"]
