"""Unit tests for the mutator agent and random workload."""

import pytest

from repro.errors import MutatorError
from repro.mutator import Mutator, RandomWorkload, WorkloadConfig
from repro.workloads import GraphBuilder
from repro.analysis import Oracle

from ..conftest import make_sim


def setup_two_sites():
    sim = make_sim(sites=("P", "Q"))
    b = GraphBuilder(sim)
    home = b.obj("P", "home", root=True)
    local = b.obj("P", "local")
    remote = b.obj("Q", "remote")
    b.link(home, local)
    b.link(home, remote)
    return sim, b


def test_position_is_pinned_as_variable_root():
    sim, b = setup_two_sites()
    Mutator(sim, "m", b["home"])
    assert b["home"] in sim.site("P").heap.variable_roots


def test_local_traverse_moves_pin():
    sim, b = setup_two_sites()
    m = Mutator(sim, "m", b["home"])
    m.traverse(b["local"])
    assert m.position == b["local"]
    assert b["local"] in sim.site("P").heap.variable_roots
    assert b["home"] not in sim.site("P").heap.variable_roots


def test_remote_traverse_is_asynchronous():
    sim, b = setup_two_sites()
    m = Mutator(sim, "m", b["home"])
    m.traverse(b["remote"])
    assert m.in_transit
    assert m.position == b["home"]
    sim.settle()
    assert not m.in_transit
    assert m.position == b["remote"]
    assert m.hops_taken == 1
    assert b["remote"] in sim.site("Q").heap.variable_roots


def test_remote_traverse_fires_transfer_barrier():
    sim, b = setup_two_sites()
    entry = sim.site("Q").inrefs.require(b["remote"])
    entry.sources["P"] = 9  # suspected
    m = Mutator(sim, "m", b["home"])
    m.traverse(b["remote"])
    sim.settle()
    assert entry.is_clean(4)


def test_traverse_requires_held_reference():
    sim, b = setup_two_sites()
    m = Mutator(sim, "m", b["home"])
    stranger = b.obj("P", "stranger")
    with pytest.raises(MutatorError):
        m.traverse(stranger)


def test_traverse_while_in_transit_rejected():
    sim, b = setup_two_sites()
    m = Mutator(sim, "m", b["home"])
    m.traverse(b["remote"])
    with pytest.raises(MutatorError):
        m.traverse(b["local"])


def test_when_arrived_callback():
    sim, b = setup_two_sites()
    m = Mutator(sim, "m", b["home"])
    seen = []
    m.traverse(b["remote"])
    m.when_arrived(lambda: seen.append(m.position))
    sim.settle()
    assert seen == [b["remote"]]


def test_variables_pin_and_clear():
    sim, b = setup_two_sites()
    m = Mutator(sim, "m", b["home"])
    m.set_variable("x", b["local"])
    assert b["local"] in sim.site("P").heap.variable_roots
    m.set_variable("x", b["remote"])  # re-bind: old pin released
    assert b["local"] not in sim.site("P").heap.variable_roots
    # A variable holding a remote reference pins the object at its owner.
    assert b["remote"] in sim.site("Q").heap.variable_roots
    m.clear_variable("x")
    assert b["remote"] not in sim.site("Q").heap.variable_roots
    with pytest.raises(MutatorError):
        m.get_variable("x")


def test_variable_root_prevents_collection():
    sim, b = setup_two_sites()
    m = Mutator(sim, "m", b["home"])
    m.set_variable("keep", b["local"])
    sim.site("P").mutator_remove_ref(b["home"], b["local"])
    sim.run_gc_round()
    assert sim.site("P").heap.contains(b["local"])
    m.clear_variable("keep")
    sim.run_gc_round()
    assert not sim.site("P").heap.contains(b["local"])


def test_store_and_delete_ref():
    sim, b = setup_two_sites()
    m = Mutator(sim, "m", b["home"])
    m.store_ref(b["local"])
    assert sim.site("P").heap.get(b["home"]).refs.count(b["local"]) == 2
    m.delete_ref(b["local"])
    m.delete_ref(b["local"])
    assert not sim.site("P").heap.get(b["home"]).holds_ref(b["local"])


def test_store_remote_destination_rejected():
    sim, b = setup_two_sites()
    m = Mutator(sim, "m", b["home"])
    with pytest.raises(MutatorError):
        m.store_ref(b["local"], holder=b["remote"])


def test_copy_ref_to_remote_full_protocol():
    sim, b = setup_two_sites()
    m = Mutator(sim, "m", b["home"])
    m.copy_ref_to_remote(b["local"], b["remote"])
    sim.settle()
    assert sim.site("Q").heap.get(b["remote"]).holds_ref(b["local"])
    assert "Q" in sim.site("P").inrefs.require(b["local"]).sources


def test_alloc_links_from_current():
    sim, b = setup_two_sites()
    m = Mutator(sim, "m", b["home"])
    oid = m.alloc()
    assert sim.site("P").heap.get(b["home"]).holds_ref(oid)
    sim.run_gc_round()
    assert sim.site("P").heap.contains(oid)


def test_random_workload_runs_safely():
    sim, b = setup_two_sites()
    workload = RandomWorkload(
        sim, "w", b["home"], config=WorkloadConfig(mean_interval=2.0)
    )
    workload.start()
    oracle = Oracle(sim)
    for _ in range(20):
        sim.run_for(50.0)
        oracle.check_safety()
    assert workload.ops_executed > 50
    workload.stop()


def test_store_variable_carried_ref_runs_insert_protocol():
    """Regression: a reference carried across sites in a mutator variable
    and stored where no outref exists must run the insert protocol --
    otherwise the owner never learns of the holder and collects a live
    object (section 6.3)."""
    sim = make_sim(sites=("P", "Q", "R"))
    b = GraphBuilder(sim)
    home = b.obj("P", "home", root=True)
    treasure = b.obj("Q", "treasure")
    b.link(home, treasure)
    shelf = b.obj("R", "shelf", root=True)
    m = Mutator(sim, "m", home)
    m.set_variable("x", b["treasure"])
    # Drop the only stored path; the variable is now the sole holder.
    m.delete_ref(b["treasure"])
    sim.run_gc_round()
    assert sim.site("Q").heap.contains(b["treasure"])  # variable pin
    # Walk to R and store the variable's reference there.
    m._arrived(shelf)  # re-enter via R's persistent root
    m.store_ref(m.get_variable("x"))
    # While the insert is in flight, the owner-side custody pin must keep
    # the object alive even if the variable is dropped immediately.
    m.clear_variable("x")
    sim.site("Q").run_local_trace()
    assert sim.site("Q").heap.contains(b["treasure"])
    sim.settle()
    # Insert processed: R is registered as a source and custody released.
    assert "R" in sim.site("Q").inrefs.require(b["treasure"]).sources
    assert b["treasure"] not in sim.site("Q").heap.variable_roots
    Oracle(sim).check_safety()
    # The object survives future rounds through the new inref alone.
    for _ in range(3):
        sim.run_gc_round()
    assert sim.site("Q").heap.contains(b["treasure"])
    Oracle(sim).check_safety()


def test_insert_for_dead_object_is_ignored():
    """An insert arriving for an already-collected object must not create a
    ghost inref entry."""
    sim = make_sim(sites=("P", "Q"))
    b = GraphBuilder(sim)
    ghost = b.obj("Q", "ghost")
    sim.site("Q").run_local_trace()  # collects the unrooted object
    assert not sim.site("Q").heap.contains(ghost)
    from repro.gc.insert import InsertRequest

    sim.site("P").send("Q", InsertRequest(target=ghost, pin_holder="P"))
    sim.settle()
    assert ghost not in sim.site("Q").inrefs


def test_workload_config_validation():
    with pytest.raises(Exception):
        WorkloadConfig(mean_interval=0.0)
    with pytest.raises(Exception):
        WorkloadConfig(max_stash=0)
