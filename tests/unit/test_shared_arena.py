"""Shared-memory arena + heap integration: regions, spill, CSR, kernels.

The parallel engine re-homes each worker heap's flat-mirror bitmaps into a
pre-forked shared-memory arena so the coordinator can read per-site resident
counts without a broadcast.  These tests exercise the arena contract in one
process: attach/copy semantics, alive-count publication through every heap
mutation path, overflow spill (grow beyond the region's slots), CSR builds
inside and outside the region, detach hygiene, and the vectorized clean
phase agreeing byte-for-byte with both sequential kernels on adversarial
random graphs.
"""

import random
import warnings

import pytest

from repro.core.distance import (
    np,
    trace_clean_phase,
    trace_clean_phase_flat,
    trace_clean_phase_vector,
)
from repro.ids import ObjectId
from repro.store.heap import Heap
from repro.store.shm import (
    FLAG_CSR_LOCAL,
    FLAG_SLOTS_OVERFLOW,
    SharedArena,
    create_arena,
    shared_memory_available,
)

pytestmark = pytest.mark.skipif(
    not shared_memory_available(),
    reason="multiprocessing.shared_memory unavailable",
)


def _arena(**kwargs):
    return SharedArena(["P", "Q"], **kwargs)


def test_regions_are_pre_zeroed_and_sized():
    arena = _arena(slot_capacity=64)
    try:
        for site in ("P", "Q"):
            region = arena.region(site)
            assert region.slot_capacity == 64
            assert region.alive_count() == 0
            assert region.flags() == 0
            assert bytes(region.alive) == b"\x00" * 64
        assert arena.total_alive() == 0
        assert arena.nbytes > 0
    finally:
        arena.close()


def test_attach_publishes_counts_through_all_mutation_paths():
    arena = _arena(slot_capacity=64)
    try:
        heap = Heap("P")
        a = heap.alloc(persistent_root=True)
        b = heap.alloc()
        a.add_ref(b.oid)
        assert heap.attach_shared_region(arena.region("P"))
        assert heap.shared_region_attached
        assert arena.region("P").alive_count() == 2

        c = heap.alloc()  # alloc publishes
        assert arena.region("P").alive_count() == 3
        heap.sweep_ids([c.oid])  # sweep publishes
        assert arena.region("P").alive_count() == 2
        heap.delete(b.oid)  # delete publishes
        assert arena.region("P").alive_count() == 1
        heap.check_flat_mirror()
        assert arena.total_alive() == 1  # Q is empty
        heap.detach_shared_region()
    finally:
        arena.close()


def test_attach_rejects_heaps_larger_than_the_region():
    arena = _arena(slot_capacity=8)
    try:
        heap = Heap("P")
        for _ in range(9):
            heap.alloc()
        assert not heap.attach_shared_region(arena.region("P"))
        assert not heap.shared_region_attached
        assert arena.region("P").flags() & FLAG_SLOTS_OVERFLOW
        assert arena.total_alive() is None  # fast path invalidated
    finally:
        arena.close()


def test_overflow_spills_to_private_buffers_with_warning():
    arena = _arena(slot_capacity=8)
    try:
        heap = Heap("P")
        roots = [heap.alloc(persistent_root=True) for _ in range(4)]
        assert heap.attach_shared_region(arena.region("P"))
        with pytest.warns(RuntimeWarning, match="outgrew"):
            for _ in range(8):
                heap.alloc()
        assert not heap.shared_region_attached
        assert arena.region("P").flags() & FLAG_SLOTS_OVERFLOW
        assert arena.total_alive() is None
        heap.check_flat_mirror()  # private buffers stayed coherent
        assert len(heap) == 12
        # The spilled heap keeps working: kernels agree post-spill.
        result = trace_clean_phase_flat(heap, [(r.oid, 0) for r in roots])
        assert result.objects_scanned == 4
    finally:
        arena.close()


def test_detach_restores_private_buffers():
    arena = _arena(slot_capacity=16)
    try:
        heap = Heap("P")
        a = heap.alloc(persistent_root=True)
        assert heap.attach_shared_region(arena.region("P"))
        heap.detach_shared_region()
        assert not heap.shared_region_attached
        # Mutations after detach must not touch (or need) the region.
        b = heap.alloc()
        a.add_ref(b.oid)
        heap.check_flat_mirror()
        assert arena.region("P").alive_count() == 1  # stale, untouched
    finally:
        arena.close()


def test_close_is_idempotent_and_releases_the_segment():
    arena = _arena(slot_capacity=16)
    arena.close()
    arena.close()


def test_for_heaps_sizes_by_largest_heap():
    arena = SharedArena.for_heaps({"P": 10, "Q": 5000})
    try:
        assert arena.region("P").slot_capacity >= 5000
        assert arena.region("P").slot_capacity == arena.region("Q").slot_capacity
    finally:
        arena.close()


def test_create_arena_best_effort_never_raises():
    arena = create_arena({"P": 100})
    if arena is not None:
        arena.close()


@pytest.mark.skipif(np is None, reason="numpy unavailable")
def test_csr_builds_in_region_and_spills_to_local_when_small():
    arena = _arena(slot_capacity=16, csr_bytes=64)  # far too small for CSR
    try:
        heap = Heap("P")
        objs = [heap.alloc(persistent_root=(i == 0)) for i in range(6)]
        for i in range(5):
            objs[i].add_ref(objs[i + 1].oid)
        assert heap.attach_shared_region(arena.region("P"))
        csr = heap.csr_graph()
        assert csr is not None
        assert arena.region("P").flags() & FLAG_CSR_LOCAL
        assert csr.indptr[-1] == 5
        heap.detach_shared_region()
    finally:
        arena.close()


@pytest.mark.skipif(np is None, reason="numpy unavailable")
def test_csr_cache_invalidates_on_graph_changes():
    heap = Heap("P")
    a = heap.alloc(persistent_root=True)
    b = heap.alloc()
    first = heap.csr_graph()
    assert heap.csr_graph() is first  # cached while the graph is unchanged
    a.add_ref(b.oid)
    second = heap.csr_graph()
    assert second is not first
    assert second.indptr[-1] == 1


# -- vectorized kernel equivalence -------------------------------------------


def _random_heap(rng):
    """An adversarial local graph: dead interned slots, dangling refs,
    multi-edges, remote refs, plus root sets that overlap and miss."""
    heap = Heap("P")
    objs = [heap.alloc(persistent_root=rng.random() < 0.2) for _ in range(40)]
    for obj in objs:
        for _ in range(rng.randrange(4)):
            target = rng.choice(objs)
            obj.add_ref(target.oid)
        if rng.random() < 0.4:
            obj.add_ref(ObjectId(rng.choice(["Q", "R"]), rng.randrange(6)))
    dead = rng.sample(objs, 8)
    heap.sweep_ids([d.oid for d in dead])
    alive = [o for o in objs if o not in dead]
    roots = []
    for obj in rng.sample(alive, 12):
        roots.append((obj.oid, rng.randrange(4)))
    if roots:
        # Duplicate root at a different (larger) distance: min must win.
        roots.append((roots[0][0], roots[0][1] + 2))
    roots.append((ObjectId("Q", 1), 0))  # remote root: ignored
    roots.append((ObjectId("P", 10_000), 1))  # unknown local id: ignored
    variable_outrefs = [ObjectId("Q", rng.randrange(6)) for _ in range(2)]
    return heap, roots, variable_outrefs


def _as_tuple(result):
    return (
        result.clean_objects,
        result.outref_distances,
        result.clean_variable_outrefs,
        result.objects_scanned,
        result.edges_examined,
    )


@pytest.mark.skipif(np is None, reason="numpy unavailable")
def test_vector_kernel_matches_both_sequential_kernels():
    for seed in range(25):
        rng = random.Random(seed)
        heap, roots, variable_outrefs = _random_heap(rng)
        legacy = trace_clean_phase(heap, roots, variable_outrefs)
        flat = trace_clean_phase_flat(heap, roots, variable_outrefs)
        vector = trace_clean_phase_vector(heap, roots, variable_outrefs)
        assert _as_tuple(flat) == _as_tuple(legacy)
        assert _as_tuple(vector) == _as_tuple(legacy), f"seed {seed}"
        # The mark bitmap is restored: a second run gives the same answer.
        again = trace_clean_phase_vector(heap, roots, variable_outrefs)
        assert _as_tuple(again) == _as_tuple(legacy)


@pytest.mark.skipif(np is None, reason="numpy unavailable")
def test_vector_kernel_works_attached_to_a_region():
    arena = _arena(slot_capacity=128)
    try:
        rng = random.Random(99)
        heap, roots, variable_outrefs = _random_heap(rng)
        expected = _as_tuple(trace_clean_phase_flat(heap, roots, variable_outrefs))
        assert heap.attach_shared_region(arena.region("P"))
        got = _as_tuple(trace_clean_phase_vector(heap, roots, variable_outrefs))
        assert got == expected
        heap.detach_shared_region()
    finally:
        arena.close()


def test_vector_kernel_without_numpy_falls_back(monkeypatch):
    import repro.core.distance as distance_mod

    heap = Heap("P")
    root = heap.alloc(persistent_root=True)
    leaf = heap.alloc()
    root.add_ref(leaf.oid)
    monkeypatch.setattr(distance_mod, "np", None)
    result = trace_clean_phase_vector(heap, [(root.oid, 0)])
    assert result.objects_scanned == 2


@pytest.mark.skipif(np is None, reason="numpy unavailable")
def test_vector_kernel_bails_out_on_deep_narrow_graphs():
    from repro.core.distance import _NARROW_PROBE_LEVELS

    heap = Heap("P")
    chain = [heap.alloc() for _ in range(_NARROW_PROBE_LEVELS * 4)]
    for holder, target in zip(chain, chain[1:]):
        holder.add_ref(target.oid)
    chain[-1].add_ref(ObjectId("Q", 0))
    roots = [(chain[0].oid, 0)]
    expected = _as_tuple(trace_clean_phase_flat(heap, roots))

    # A width-1 chain triggers the narrow-frontier bailout: identical
    # result (marks restored, outref distance intact), plus a backoff so
    # the next traces skip numpy entirely.
    got = _as_tuple(trace_clean_phase_vector(heap, roots))
    assert got == expected
    assert heap.vector_kernel_backoff > 0

    remaining = heap.vector_kernel_backoff
    again = _as_tuple(trace_clean_phase_vector(heap, roots))
    assert again == expected
    assert heap.vector_kernel_backoff == remaining - 1


# -- ring area ----------------------------------------------------------------


def test_ring_area_carves_distinct_pair_slices():
    arena = _arena(slot_capacity=8, ring_workers=2, ring_bytes=2048)
    try:
        assert arena.ring_workers == 2 and arena.ring_bytes == 2048
        assert arena.has_site_regions
        # Each ordered pair gets its own slice; a write to (0, 1) is
        # invisible to (1, 0) and never corrupts the site regions.
        forward, backward = arena.ring(0, 1), arena.ring(1, 0)
        pos = forward.try_write(b"hello", 0, 0)
        assert pos is not None
        assert forward.read(0, pos) == [b"hello"]
        assert backward.read(0, 0) == []
        assert arena.total_alive() == 0
        with pytest.raises(Exception, match="no ring"):
            arena.ring(0, 2)
    finally:
        arena.close()


def test_rings_only_arena_has_no_site_regions():
    # shared_arena=False + direct_rings=True builds an arena with an empty
    # site table: ring slices exist, but there are no published counts and
    # total_alive must say so rather than report 0.
    arena = SharedArena([], ring_workers=2, ring_bytes=1024)
    try:
        assert not arena.has_site_regions
        assert arena.total_alive() is None
        assert arena.alive_counts() is None
        ring = arena.ring(1, 0)
        pos = ring.try_write(b"x" * 64, 0, 0)
        assert ring.read(0, pos) == [b"x" * 64]
    finally:
        arena.close()


def test_ring_area_absent_without_ring_bytes():
    arena = _arena(slot_capacity=8, ring_workers=4, ring_bytes=0)
    try:
        assert arena.ring_workers == 0
        with pytest.raises(Exception, match="no ring"):
            arena.ring(0, 0)
    finally:
        arena.close()
