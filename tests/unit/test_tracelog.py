"""Unit tests for the structured protocol event log."""

from repro.analysis import Oracle, TraceLog
from repro.workloads import GraphBuilder, build_ring_cycle

from ..conftest import collect_until_clean, make_sim


def run_cycle_with_log():
    sim = make_sim(sites=("P", "Q"))
    log = TraceLog(sim)
    workload = build_ring_cycle(sim, ["P", "Q"])
    for _ in range(2):
        sim.run_gc_round()
    workload.make_garbage(sim)
    collect_until_clean(sim, Oracle(sim), max_rounds=40)
    return sim, log


def test_logs_local_traces_with_sweep_counts():
    sim, log = run_cycle_with_log()
    traces = log.of_kind("local-trace")
    assert traces
    assert sum(event.detail["swept"] for event in traces) >= 2


def test_logs_backtrace_lifecycle():
    sim, log = run_cycle_with_log()
    starts = log.of_kind("backtrace-start")
    outcomes = log.of_kind("backtrace-outcome")
    assert len(starts) == 1
    assert len(outcomes) == 1
    assert outcomes[0].detail["verdict"] == "garbage"
    assert outcomes[0].detail["trace"] == starts[0].detail["trace"]
    assert starts[0].time <= outcomes[0].time


def test_events_are_time_ordered():
    sim, log = run_cycle_with_log()
    times = [event.time for event in log.events]
    assert times == sorted(times)


def test_barrier_events_logged():
    sim = make_sim(sites=("P", "Q"))
    log = TraceLog(sim)
    b = GraphBuilder(sim)
    target = b.obj("Q", "t")
    holder = b.obj("P", "h", root=True)
    b.link(holder, target)
    entry = sim.site("Q").inrefs.require(target)
    entry.sources["P"] = 9
    sim.site("Q").barrier.on_reference_arrival(target)
    events = log.of_kind("transfer-barrier")
    assert len(events) == 1
    assert events[0].detail["inref"] == str(target)


def test_crash_recover_events():
    sim = make_sim(sites=("P", "Q"))
    log = TraceLog(sim)
    sim.site("Q").crash()
    sim.site("Q").recover()
    assert [event.kind for event in log.at_site("Q")] == ["crash", "recover"]


def test_query_helpers_and_render():
    sim, log = run_cycle_with_log()
    assert set(log.kinds()) >= {"local-trace", "backtrace-start", "backtrace-outcome"}
    rendered = log.render(kinds=["backtrace-outcome"])
    assert "verdict=garbage" in rendered
    assert log.between(0.0, sim.now)  # everything falls in the window
    limited = log.render(limit=2)
    assert len(limited.splitlines()) <= 2


def test_capacity_bound_drops_excess():
    sim = make_sim(sites=("P",))
    log = TraceLog(sim, capacity=3)
    for index in range(6):
        log.record("P", "synthetic", index=index)
    assert len(log.events) == 3
    assert log.dropped == 3
