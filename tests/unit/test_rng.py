"""Unit tests for named seeded RNG streams."""

from repro.sim.rng import RngRegistry


def test_same_name_same_stream_object():
    reg = RngRegistry(7)
    assert reg.stream("a") is reg.stream("a")


def test_streams_deterministic_across_registries():
    first = RngRegistry(7).stream("net").random()
    second = RngRegistry(7).stream("net").random()
    assert first == second


def test_different_names_are_independent():
    reg = RngRegistry(7)
    a = [reg.stream("a").random() for _ in range(5)]
    b = [RngRegistry(7).stream("b").random() for _ in range(5)]
    assert a != b


def test_different_seeds_differ():
    a = RngRegistry(1).stream("x").random()
    b = RngRegistry(2).stream("x").random()
    assert a != b


def test_new_stream_does_not_perturb_existing():
    reg1 = RngRegistry(5)
    s = reg1.stream("main")
    first = s.random()
    reg2 = RngRegistry(5)
    reg2.stream("other")  # extra stream created first
    s2 = reg2.stream("main")
    assert s2.random() == first
