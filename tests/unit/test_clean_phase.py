"""Unit tests for the clean phase of a local trace (distance propagation)."""

from repro.core.distance import trace_clean_phase
from repro.ids import ObjectId
from repro.store.heap import Heap


def build_heap():
    return Heap("P")


def test_marks_reachable_closure():
    heap = build_heap()
    a, b, c = heap.alloc(), heap.alloc(), heap.alloc()
    a.add_ref(b.oid)
    b.add_ref(c.oid)
    result = trace_clean_phase(heap, roots=[(a.oid, 0)])
    assert result.clean_objects == {a.oid, b.oid, c.oid}


def test_unreachable_not_marked():
    heap = build_heap()
    a = heap.alloc()
    orphan = heap.alloc()
    result = trace_clean_phase(heap, roots=[(a.oid, 0)])
    assert orphan.oid not in result.clean_objects


def test_outref_distance_is_root_distance_plus_one():
    heap = build_heap()
    a = heap.alloc()
    remote = ObjectId("Q", 7)
    a.add_ref(remote)
    result = trace_clean_phase(heap, roots=[(a.oid, 3)])
    assert result.outref_distances[remote] == 4


def test_outref_distance_takes_minimum_over_roots():
    heap = build_heap()
    near, far = heap.alloc(), heap.alloc()
    remote = ObjectId("Q", 7)
    shared = heap.alloc()
    shared.add_ref(remote)
    near.add_ref(shared.oid)
    far.add_ref(shared.oid)
    # Roots processed in increasing distance order: shared is visited from
    # ``near`` first, so the outref records 0+1 = 1 even though ``far``
    # also reaches it.
    result = trace_clean_phase(heap, roots=[(far.oid, 5), (near.oid, 0)])
    assert result.outref_distances[remote] == 1


def test_local_cycle_is_traced_once():
    heap = build_heap()
    a, b = heap.alloc(), heap.alloc()
    a.add_ref(b.oid)
    b.add_ref(a.oid)
    result = trace_clean_phase(heap, roots=[(a.oid, 0)])
    assert result.clean_objects == {a.oid, b.oid}
    assert result.objects_scanned == 2


def test_variable_outrefs_get_distance_one():
    heap = build_heap()
    remote = ObjectId("Q", 1)
    result = trace_clean_phase(heap, roots=[], variable_outrefs=[remote])
    assert result.outref_distances[remote] == 1
    assert remote in result.clean_variable_outrefs


def test_variable_outref_distance_not_raised_by_far_root():
    heap = build_heap()
    a = heap.alloc()
    remote = ObjectId("Q", 1)
    a.add_ref(remote)
    result = trace_clean_phase(heap, roots=[(a.oid, 6)], variable_outrefs=[remote])
    assert result.outref_distances[remote] == 1


def test_remote_root_ids_ignored():
    heap = build_heap()
    result = trace_clean_phase(heap, roots=[(ObjectId("Q", 5), 0)])
    assert result.clean_objects == set()


def test_dangling_local_refs_skipped():
    heap = build_heap()
    a = heap.alloc()
    ghost = ObjectId("P", 999)
    a.add_ref(ghost)
    result = trace_clean_phase(heap, roots=[(a.oid, 0)])
    assert result.clean_objects == {a.oid}


def test_missing_root_object_skipped():
    heap = build_heap()
    result = trace_clean_phase(heap, roots=[(ObjectId("P", 5), 0)])
    assert result.clean_objects == set()
