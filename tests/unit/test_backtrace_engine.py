"""Unit tests for the back-trace protocol engine (section 4).

Topologies are built directly with suspected distances injected, then each
site runs one local trace to compute insets before traces start.
"""

import pytest

from repro import GcConfig
from repro.core.backtrace.messages import TraceOutcome
from repro.workloads import GraphBuilder

from ..conftest import make_sim

SUSPECT = 9  # any distance above the default threshold of 4


def suspect_all_inrefs(sim):
    """Force every inref source distance above the suspicion threshold."""
    for site in sim.sites.values():
        for entry in site.inrefs.entries():
            for source in entry.sources:
                entry.sources[source] = SUSPECT


def prepare(sim):
    """Make all inrefs suspected and compute insets at every site."""
    suspect_all_inrefs(sim)
    for site_id in sorted(sim.sites):
        sim.sites[site_id].run_local_trace()
    sim.settle()


def build_two_site_cycle(sim):
    b = GraphBuilder(sim)
    p = b.obj("P", "p")
    q = b.obj("Q", "q")
    b.link(p, q)
    b.link(q, p)
    return b


def test_two_site_garbage_cycle_confirmed():
    sim = make_sim(sites=("P", "Q"))
    b = build_two_site_cycle(sim)
    prepare(sim)
    engine = sim.site("P").engine
    trace_id = engine.start_trace(b["q"])
    assert trace_id is not None
    sim.settle()
    outcomes = sim.trace_outcomes
    assert len(outcomes) == 1
    assert outcomes[0][3] is TraceOutcome.GARBAGE
    # Both inrefs flagged garbage at their sites.
    assert sim.site("Q").inrefs.require(b["q"]).garbage
    assert sim.site("P").inrefs.require(b["p"]).garbage


def test_confirmed_cycle_collected_by_next_local_traces():
    sim = make_sim(sites=("P", "Q"))
    b = build_two_site_cycle(sim)
    prepare(sim)
    sim.site("P").engine.start_trace(b["q"])
    sim.settle()
    sim.run_gc_round()
    assert not sim.site("P").heap.contains(b["p"])
    assert not sim.site("Q").heap.contains(b["q"])
    # Update messages empty the source lists, removing the flagged entries.
    sim.run_gc_round()
    assert b["p"] not in sim.site("P").inrefs
    assert b["q"] not in sim.site("Q").inrefs


def test_live_cycle_returns_live():
    """A suspected structure actually anchored to a clean inref answers Live."""
    sim = make_sim(sites=("P", "Q"))
    b = build_two_site_cycle(sim)
    # An extra clean holder of p at site Q's side: give inref p a second,
    # clean source by linking from a root at Q.
    root = b.obj("Q", "root", root=True)
    b.link(root, b["p"])
    prepare(sim)
    # The root at Q makes Q's outref for p clean during Q's local trace, and
    # inref p's distance from Q becomes 1 -> clean.  A back trace from P's
    # outref q reaches inref q, whose source P's outref... start from q.
    trace_id = sim.site("P").engine.start_trace(b["q"])
    if trace_id is None:
        # The outref became clean through the distance updates; the collector
        # would simply never trigger a trace -- equally a pass.
        return
    sim.settle()
    assert sim.trace_outcomes[-1][3] is TraceOutcome.LIVE
    assert not sim.site("Q").inrefs.require(b["q"]).garbage


def test_start_trace_rejects_clean_outref():
    sim = make_sim(sites=("P", "Q"))
    b = build_two_site_cycle(sim)
    root = b.obj("P", "root", root=True)
    b.link(root, b["q"])
    for site_id in sorted(sim.sites):
        sim.sites[site_id].run_local_trace()
    sim.settle()
    assert sim.site("P").engine.start_trace(b["q"]) is None


def test_start_trace_deduplicates_active_root():
    sim = make_sim(sites=("P", "Q"))
    b = build_two_site_cycle(sim)
    prepare(sim)
    engine = sim.site("P").engine
    first = engine.start_trace(b["q"])
    # No settling: trace still active.
    assert engine.start_trace(b["q"]) is None
    sim.settle()
    assert first is not None


def test_three_site_ring_garbage():
    sim = make_sim(sites=("P", "Q", "R"))
    b = GraphBuilder(sim)
    p, q, r = b.obj("P", "p"), b.obj("Q", "q"), b.obj("R", "r")
    b.link_cycle([p, q, r])
    prepare(sim)
    sim.site("P").engine.start_trace(b["q"])
    sim.settle()
    assert sim.trace_outcomes[-1][3] is TraceOutcome.GARBAGE
    for label, site_id in (("p", "P"), ("q", "Q"), ("r", "R")):
        assert sim.site(site_id).inrefs.require(b[label]).garbage


def test_figure3_branching_visited_marks():
    """Figure 3: a trace from d branches at inref c; the branch finding the
    already-visited inref a returns Garbage, while the long root path makes
    the whole trace Live."""
    sim = make_sim(sites=("P", "Q", "R", "S"))
    b = GraphBuilder(sim)
    a = b.obj("P", "a")
    bb = b.obj("Q", "b")
    c = b.obj("R", "c")
    d = b.obj("R", "d")
    b.link(a, bb)   # a -> b (P -> Q)
    b.link(bb, a)   # b: a   (Q -> P)
    b.link(bb, c)   # b -> c
    b.link(a, c)    # a -> c  (c: P, Q)
    b.link(c, d)
    # Long path from a root on S to a.
    root = b.obj("S", "root", root=True)
    hop = b.obj("S", "hop")
    b.link(root, hop)
    b.link(hop, a)
    prepare(sim)
    # inref a has sources S (clean path) and Q; the S source distance was
    # forced suspect too, so instead keep S's source clean:
    entry = sim.site("P").inrefs.require(b["a"])
    entry.sources["S"] = 1
    trace_id = sim.site("R").engine.start_trace(b["d"]) if False else None
    # d is an object at R, not an outref; the back trace starts from R's
    # *outref*... d has no outrefs; start instead from Q's outref for c? The
    # figure starts the trace at d's inref side; we start from the outref
    # for d held at... no site holds d remotely.  Start from c's holder:
    trace_id = sim.site("Q").engine.start_trace(b["c"])
    assert trace_id is not None
    sim.settle()
    assert sim.trace_outcomes[-1][3] is TraceOutcome.LIVE


def test_clique_cycle_confirmed_with_bounded_messages():
    sim = make_sim(sites=("P", "Q", "R", "S"))
    b = GraphBuilder(sim)
    members = [b.obj(s) for s in ("P", "Q", "R", "S")]
    for src in members:
        for dst in members:
            if src != dst:
                b.link(src, dst)
    prepare(sim)
    before = sim.metrics.snapshot()
    target = [m for m in members if m.site != "P"][0]
    sim.site("P").engine.start_trace(target)
    sim.settle()
    assert sim.trace_outcomes[-1][3] is TraceOutcome.GARBAGE
    delta = sim.metrics.snapshot().diff(before)
    calls = delta.get("messages.BackCall", 0)
    replies = delta.get("messages.BackReply", 0)
    outcomes = delta.get("messages.BackOutcome", 0)
    assert calls == replies
    # 4 sites, 12 inter-site references: 2E + (N-1) messages.
    assert calls == 12
    assert outcomes == 3


def test_timeout_assumes_live():
    """A crashed participant makes the caller's frame time out -> Live."""
    sim = make_sim(sites=("P", "Q"), gc=GcConfig(backtrace_timeout=50.0))
    b = build_two_site_cycle(sim)
    prepare(sim)
    sim.site("Q").crash()
    sim.site("P").engine.start_trace(b["q"])
    sim.run_for(500.0)
    assert sim.metrics.count("backtrace.frame_timeouts") >= 1
    assert sim.trace_outcomes[-1][3] is TraceOutcome.LIVE
    # Nothing was flagged garbage at the surviving site.
    assert not sim.site("P").inrefs.require(b["p"]).garbage


def test_visit_bumps_back_threshold():
    sim = make_sim(sites=("P", "Q"))
    b = build_two_site_cycle(sim)
    prepare(sim)
    increment = sim.config.gc.back_threshold_increment
    before = sim.site("P").outrefs.require(b["q"]).back_threshold
    sim.site("P").engine.start_trace(b["q"])
    sim.settle()
    after = sim.site("P").outrefs.require(b["q"]).back_threshold
    assert after == before + increment


def test_back_call_on_missing_outref_returns_garbage():
    sim = make_sim(sites=("P", "Q"))
    b = build_two_site_cycle(sim)
    prepare(sim)
    # Remove Q's outref for p behind the protocol's back: the remote step
    # from inref p to Q must answer Garbage for the missing entry.
    sim.site("Q").outrefs.remove(b["p"])
    sim.site("P").engine.start_trace(b["q"])
    sim.settle()
    assert sim.trace_outcomes[-1][3] is TraceOutcome.GARBAGE


def test_garbage_flagged_inref_short_circuits():
    sim = make_sim(sites=("P", "Q"))
    b = build_two_site_cycle(sim)
    prepare(sim)
    sim.site("Q").inrefs.require(b["q"]).garbage = True
    sim.site("P").engine.start_trace(b["q"])
    sim.settle()
    assert sim.trace_outcomes[-1][3] is TraceOutcome.GARBAGE


def test_concurrent_traces_same_cycle_both_complete():
    sim = make_sim(sites=("P", "Q"))
    b = build_two_site_cycle(sim)
    prepare(sim)
    sim.site("P").engine.start_trace(b["q"])
    sim.site("Q").engine.start_trace(b["p"])
    sim.settle()
    assert len(sim.trace_outcomes) == 2
    # At least one confirms garbage; the other may return either verdict
    # depending on interleaving (visited marks are per-trace, so normally
    # both confirm).
    verdicts = {outcome[3] for outcome in sim.trace_outcomes}
    assert TraceOutcome.GARBAGE in verdicts
