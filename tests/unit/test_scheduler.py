"""Unit tests for the discrete-event scheduler."""

import pytest

from repro.errors import SchedulerError
from repro.sim.scheduler import Scheduler


def test_clock_starts_at_zero():
    assert Scheduler().now == 0.0


def test_events_fire_in_time_order():
    sched = Scheduler()
    fired = []
    sched.schedule(5.0, lambda: fired.append("b"))
    sched.schedule(1.0, lambda: fired.append("a"))
    sched.schedule(9.0, lambda: fired.append("c"))
    sched.drain()
    assert fired == ["a", "b", "c"]


def test_ties_break_by_schedule_order():
    sched = Scheduler()
    fired = []
    for name in "abcde":
        sched.schedule(3.0, lambda n=name: fired.append(n))
    sched.drain()
    assert fired == list("abcde")


def test_clock_advances_to_event_time():
    sched = Scheduler()
    times = []
    sched.schedule(2.5, lambda: times.append(sched.now))
    sched.schedule(7.0, lambda: times.append(sched.now))
    sched.drain()
    assert times == [2.5, 7.0]
    assert sched.now == 7.0


def test_negative_delay_rejected():
    with pytest.raises(SchedulerError):
        Scheduler().schedule(-1.0, lambda: None)


def test_cancel_prevents_firing():
    sched = Scheduler()
    fired = []
    handle = sched.schedule(1.0, lambda: fired.append("x"))
    handle.cancel()
    sched.drain()
    assert fired == []
    assert handle.cancelled


def test_cancel_twice_is_noop():
    sched = Scheduler()
    handle = sched.schedule(1.0, lambda: None)
    handle.cancel()
    handle.cancel()
    assert handle.cancelled


def test_run_until_fires_only_due_events():
    sched = Scheduler()
    fired = []
    sched.schedule(1.0, lambda: fired.append(1))
    sched.schedule(2.0, lambda: fired.append(2))
    sched.schedule(3.0, lambda: fired.append(3))
    count = sched.run_until(2.0)
    assert count == 2
    assert fired == [1, 2]
    assert sched.now == 2.0


def test_run_until_advances_clock_past_empty_queue():
    sched = Scheduler()
    sched.run_until(42.0)
    assert sched.now == 42.0


def test_run_for_is_relative():
    sched = Scheduler()
    sched.run_until(10.0)
    fired = []
    sched.schedule(5.0, lambda: fired.append(sched.now))
    sched.run_for(5.0)
    assert fired == [15.0]


def test_events_scheduled_during_events_fire():
    sched = Scheduler()
    fired = []

    def outer():
        fired.append("outer")
        sched.schedule(1.0, lambda: fired.append("inner"))

    sched.schedule(1.0, outer)
    sched.drain()
    assert fired == ["outer", "inner"]


def test_zero_delay_event_fires_after_current():
    sched = Scheduler()
    fired = []

    def outer():
        sched.schedule(0.0, lambda: fired.append("zero"))
        fired.append("outer")

    sched.schedule(1.0, outer)
    sched.drain()
    assert fired == ["outer", "zero"]


def test_drain_bound_raises_on_runaway():
    sched = Scheduler()

    def reschedule():
        sched.schedule(1.0, reschedule)

    sched.schedule(1.0, reschedule)
    with pytest.raises(SchedulerError):
        sched.drain(max_events=100)


def test_pending_counts_uncancelled():
    sched = Scheduler()
    sched.schedule(1.0, lambda: None)
    handle = sched.schedule(2.0, lambda: None)
    handle.cancel()
    assert sched.pending == 1


def test_run_until_respects_max_events():
    sched = Scheduler()
    fired = []
    for i in range(10):
        sched.schedule(1.0, lambda i=i: fired.append(i))
    count = sched.run_until(5.0, max_events=3)
    assert count == 3
    assert fired == [0, 1, 2]
    # Clock must not jump to the target when stopped early.
    assert sched.now == 1.0


def test_events_fired_counter():
    sched = Scheduler()
    for _ in range(4):
        sched.schedule(1.0, lambda: None)
    sched.drain()
    assert sched.events_fired == 4


def test_schedule_at_absolute_time():
    sched = Scheduler()
    times = []
    sched.schedule_at(12.0, lambda: times.append(sched.now))
    sched.drain()
    assert times == [12.0]


# -- peek_time / live_events (the parallel planner's read surface) -----------


def test_peek_time_skips_cancelled_heads():
    sched = Scheduler()
    first = sched.schedule(2.0, lambda: None)
    sched.schedule(5.0, lambda: None)
    assert sched.peek_time() == 2.0
    first.cancel()
    # The cancelled head is popped lazily by the peek itself, so repeated
    # peeks between events stay O(1).
    assert sched.peek_time() == 5.0
    assert sched.queue_length == 1


def test_peek_time_idle_is_inf_and_next_event_time_is_alias():
    sched = Scheduler()
    assert sched.peek_time() == float("inf")
    assert sched.next_event_time() == float("inf")
    sched.schedule(3.0, lambda: None)
    assert sched.next_event_time() == sched.peek_time() == 3.0


def test_live_events_excludes_cancelled_and_carries_label_and_site():
    sched = Scheduler()
    sched.schedule(3.0, lambda: None, label="gc-tick:A", site="A")
    doomed = sched.schedule(1.0, lambda: None, label="deliver:x", site="B")
    sched.schedule(7.0, lambda: None)
    doomed.cancel()
    events = sorted(sched.live_events())
    assert events == [(3.0, "gc-tick:A", "A"), (7.0, "", None)]
