"""Unit tests for the per-site heap and heap objects."""

import pytest

from repro.errors import HeapError, NotLocalError, UnknownObjectError
from repro.ids import ObjectId
from repro.store.heap import Heap
from repro.store.objects import HeapObject


def test_alloc_assigns_monotonic_serials():
    heap = Heap("P")
    a = heap.alloc()
    b = heap.alloc()
    assert (a.oid.site, b.oid.site) == ("P", "P")
    assert b.oid.serial == a.oid.serial + 1


def test_get_rejects_remote_ids():
    heap = Heap("P")
    with pytest.raises(NotLocalError):
        heap.get(ObjectId("Q", 0))


def test_get_unknown_raises():
    heap = Heap("P")
    with pytest.raises(UnknownObjectError):
        heap.get(ObjectId("P", 99))


def test_refs_add_remove_with_duplicates():
    heap = Heap("P")
    a = heap.alloc()
    b = heap.alloc()
    a.add_ref(b.oid)
    a.add_ref(b.oid)
    assert a.refs.count(b.oid) == 2
    a.remove_ref(b.oid)
    assert a.refs.count(b.oid) == 1


def test_remove_missing_ref_raises():
    heap = Heap("P")
    a = heap.alloc()
    with pytest.raises(HeapError):
        a.remove_ref(ObjectId("P", 42))


def test_local_and_remote_ref_partition():
    obj = HeapObject(ObjectId("P", 0), refs=[ObjectId("P", 1), ObjectId("Q", 2)])
    assert obj.local_refs() == [ObjectId("P", 1)]
    assert obj.remote_refs() == [ObjectId("Q", 2)]


def test_persistent_roots():
    heap = Heap("P")
    a = heap.alloc(persistent_root=True)
    b = heap.alloc()
    assert heap.persistent_roots == {a.oid}
    heap.make_persistent_root(b.oid)
    assert heap.persistent_roots == {a.oid, b.oid}
    heap.drop_persistent_root(a.oid)
    assert heap.persistent_roots == {b.oid}


def test_variable_pins_are_counted():
    heap = Heap("P")
    a = heap.alloc()
    heap.pin_variable(a.oid)
    heap.pin_variable(a.oid)
    heap.unpin_variable(a.oid)
    assert a.oid in heap.variable_roots
    heap.unpin_variable(a.oid)
    assert a.oid not in heap.variable_roots


def test_locally_reachable_follows_local_refs_only():
    heap = Heap("P")
    a, b, c = heap.alloc(), heap.alloc(), heap.alloc()
    a.add_ref(b.oid)
    b.add_ref(ObjectId("Q", 9))  # remote: not followed
    b.add_ref(c.oid)
    reachable = heap.locally_reachable_from([a.oid])
    assert reachable == {a.oid, b.oid, c.oid}


def test_locally_reachable_ignores_remote_roots():
    heap = Heap("P")
    a = heap.alloc()
    assert heap.locally_reachable_from([ObjectId("Q", 1), a.oid]) == {a.oid}


def test_sweep_removes_dead_and_counts():
    heap = Heap("P")
    a, b, c = heap.alloc(), heap.alloc(), heap.alloc()
    dead = heap.sweep(live={a.oid})
    assert set(dead) == {b.oid, c.oid}
    assert heap.contains(a.oid)
    assert not heap.contains(b.oid)
    assert heap.objects_collected == 2


def test_sweep_ids_skips_missing():
    heap = Heap("P")
    a = heap.alloc()
    deleted = heap.sweep_ids([a.oid, ObjectId("P", 77)])
    assert deleted == [a.oid]


def test_sweep_clears_roots_of_dead_objects():
    heap = Heap("P")
    a = heap.alloc(persistent_root=True)
    heap.pin_variable(a.oid)
    heap.sweep_ids([a.oid])
    assert heap.persistent_roots == set()
    assert heap.variable_roots == set()


def test_cycle_is_fully_reachable():
    heap = Heap("P")
    a, b = heap.alloc(), heap.alloc()
    a.add_ref(b.oid)
    b.add_ref(a.oid)
    assert heap.locally_reachable_from([a.oid]) == {a.oid, b.oid}


def test_adopt_clones_refs_under_new_id():
    heap_p, heap_q = Heap("P"), Heap("Q")
    src = heap_p.alloc(refs=[ObjectId("R", 3)])
    clone = heap_q.adopt(src)
    assert clone.oid.site == "Q"
    assert clone.refs == [ObjectId("R", 3)]
