"""Unit tests for the harness: report tables and figure scenarios."""

import pytest

from repro.harness.report import Table
from repro.harness.scenarios import (
    build_figure1,
    build_figure2,
    build_figure3,
    build_figure5,
)


class TestTable:
    def test_render_contains_title_and_cells(self):
        table = Table("My Title", ["col a", "col b"])
        table.add_row("x", 3)
        rendered = table.render()
        assert "My Title" in rendered
        assert "col a" in rendered and "col b" in rendered
        assert "x" in rendered and "3" in rendered

    def test_floats_formatted(self):
        table = Table("t", ["v"])
        table.add_row(1.23456)
        assert "1.23" in table.render()

    def test_row_arity_checked(self):
        table = Table("t", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row("only one")

    def test_column_width_adapts(self):
        table = Table("t", ["c"])
        table.add_row("a-very-long-cell-value")
        lines = table.render().splitlines()
        header_line = next(line for line in lines if "c" in line)
        assert len(header_line) >= len("a-very-long-cell-value")


class TestScenarios:
    def test_figure1_tables_consistent(self):
        scenario = build_figure1()
        sim = scenario.sim
        # P's outrefs: b and c; Q's: c, e, g; R's: f (per the figure).
        assert set(sim.site("P").outrefs.targets()) == {scenario["b"], scenario["c"]}
        assert set(sim.site("Q").outrefs.targets()) == {
            scenario["c"], scenario["e"], scenario["g"],
        }
        assert set(sim.site("R").outrefs.targets()) == {scenario["f"]}
        # Inref source lists match the figure.
        assert set(sim.site("R").inrefs.require(scenario["c"]).sources) == {"P", "Q"}
        assert set(sim.site("P").inrefs.require(scenario["e"]).sources) == {"Q"}

    def test_figure2_structure(self):
        scenario = build_figure2()
        sim = scenario.sim
        assert set(sim.site("P").inrefs.require(scenario["c"]).sources) == {"Q"}
        assert sim.site("Q").heap.get(scenario["b"]).holds_ref(scenario["d"])

    def test_figure3_has_root_path(self):
        scenario = build_figure3()
        sim = scenario.sim
        root = scenario["root"]
        assert root in sim.site("S").heap.persistent_roots

    def test_figure5_spine_and_loop(self):
        scenario = build_figure5()
        sim = scenario.sim
        assert sim.site("Q").heap.get(scenario["f"]).holds_ref(scenario["z"])
        assert sim.site("Q").heap.get(scenario["x"]).holds_ref(scenario["g"])
        assert set(sim.site("P").inrefs.require(scenario["g"]).sources) == {"Q"}

    def test_scenarios_are_seed_deterministic(self):
        first = build_figure1(seed=5)
        second = build_figure1(seed=5)
        assert first.builder.labels == second.builder.labels

    def test_label_lookup_raises_for_unknown(self):
        scenario = build_figure1()
        with pytest.raises(Exception):
            scenario["nonexistent"]
