"""Smoke tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


def test_demo_exits_zero(capsys):
    assert main(["demo"]) == 0
    out = capsys.readouterr().out
    assert "collected after" in out


def test_figures_runs(capsys):
    assert main(["figures"]) == 0
    out = capsys.readouterr().out
    assert "Figure 1" in out and "Figure 3" in out


def test_stress_short_run(capsys):
    assert main(["--seed", "1", "stress", "--duration", "600"]) == 0
    out = capsys.readouterr().out
    assert "zero residual garbage" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


def test_seed_flag_replays_identically(capsys):
    main(["--seed", "7", "demo"])
    first = capsys.readouterr().out
    main(["--seed", "7", "demo"])
    second = capsys.readouterr().out
    assert first == second
