"""Unit tests for the omniscient reachability oracle."""

import pytest

from repro.analysis import Oracle
from repro.errors import OracleError
from repro.mutator import Mutator
from repro.workloads import GraphBuilder

from ..conftest import make_sim


def test_live_set_spans_sites():
    sim = make_sim(sites=("P", "Q"))
    b = GraphBuilder(sim)
    root = b.obj("P", "root", root=True)
    far = b.obj("Q", "far")
    b.link(root, far)
    oracle = Oracle(sim)
    assert oracle.live_set() == {b["root"], b["far"]}


def test_garbage_set_complements_live():
    sim = make_sim(sites=("P", "Q"))
    b = GraphBuilder(sim)
    b.obj("P", "root", root=True)
    stray = b.obj("Q", "stray")
    oracle = Oracle(sim)
    assert oracle.garbage_set() == {stray}


def test_variable_roots_counted():
    sim = make_sim(sites=("P",))
    b = GraphBuilder(sim)
    lone = b.obj("P", "lone")
    sim.site("P").pin_variable(lone)
    assert lone in Oracle(sim).live_set()


def test_variable_outref_counted():
    sim = make_sim(sites=("P", "Q"))
    b = GraphBuilder(sim)
    remote = b.obj("Q", "remote")
    sim.site("P").pin_variable(remote)
    assert remote in Oracle(sim).live_set()


def test_in_flight_refs_are_roots():
    sim = make_sim(sites=("P", "Q"))
    b = GraphBuilder(sim)
    home = b.obj("P", "home", root=True)
    target = b.obj("Q", "target")
    b.link(home, target)
    m = Mutator(sim, "m", home)
    m.traverse(target)
    # Cut the only stored path while the hop is in flight.
    sim.site("P").mutator_remove_ref(home, target)
    oracle = Oracle(sim)
    assert target in oracle.live_set()
    sim.settle()
    assert m.position == target
    oracle.check_safety()


def test_check_safety_detects_collected_live_object():
    sim = make_sim(sites=("P", "Q"))
    b = GraphBuilder(sim)
    root = b.obj("P", "root", root=True)
    victim = b.obj("Q", "victim")
    b.link(root, victim)
    sim.site("Q").heap.delete(victim)  # simulate an unsafe collector
    with pytest.raises(OracleError):
        Oracle(sim).check_safety()


def test_distributed_cyclic_garbage_detection():
    sim = make_sim(sites=("P", "Q"))
    b = GraphBuilder(sim)
    b.obj("P", "root", root=True)
    p, q = b.obj("P", "p"), b.obj("Q", "q")
    b.link(p, q)
    b.link(q, p)
    tail = b.obj("Q", "tail")
    b.link(q, tail)  # acyclic garbage hanging off the cycle
    lone = b.obj("P", "lone")  # acyclic garbage not on a cycle
    oracle = Oracle(sim)
    cyclic = oracle.distributed_cyclic_garbage()
    assert cyclic == {p, q, tail}
    assert lone in oracle.garbage_set()
    assert lone not in cyclic


def test_local_cycle_not_distributed():
    sim = make_sim(sites=("P",))
    b = GraphBuilder(sim)
    a, c = b.obj("P", "a"), b.obj("P", "c")
    b.link(a, c)
    b.link(c, a)
    oracle = Oracle(sim)
    assert oracle.garbage_set() == {a, c}
    assert oracle.distributed_cyclic_garbage() == set()


def test_assert_no_garbage_raises_when_garbage():
    sim = make_sim(sites=("P",))
    b = GraphBuilder(sim)
    b.obj("P", "stray")
    with pytest.raises(OracleError):
        Oracle(sim).assert_no_garbage()
