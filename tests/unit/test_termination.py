"""Unit tests for credit-recovery termination detection."""

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.termination import FULL_CREDIT, CreditPool, split_credit


def test_split_preserves_total():
    shares, kept = split_credit(Fraction(1), 3)
    assert sum(shares) + kept == Fraction(1)
    assert len(shares) == 3
    assert all(share > 0 for share in shares)


def test_split_zero_children_keeps_everything():
    shares, kept = split_credit(Fraction(1, 7), 0)
    assert shares == []
    assert kept == Fraction(1, 7)


def test_pool_completes_only_at_full_credit():
    pool = CreditPool()
    shares = pool.hand_out(4)
    assert sum(shares) == FULL_CREDIT
    for share in shares[:-1]:
        pool.give_back(share)
        assert not pool.complete
    pool.give_back(shares[-1])
    assert pool.complete


def test_pool_handles_zero_seeds():
    pool = CreditPool()
    assert pool.hand_out(0) == []
    assert pool.complete


def test_reset():
    pool = CreditPool()
    for share in pool.hand_out(2):
        pool.give_back(share)
    assert pool.complete
    pool.reset()
    assert not pool.complete


@given(
    st.lists(st.integers(min_value=0, max_value=5), min_size=1, max_size=60),
    st.integers(min_value=1, max_value=8),
)
@settings(max_examples=200, deadline=None)
def test_arbitrary_spawn_trees_conserve_credit(spawn_counts, seeds):
    """Simulate any interleaving of spawns and returns: credit is conserved
    and the pool completes exactly when all outstanding work is done."""
    pool = CreditPool()
    outstanding = list(pool.hand_out(seeds))
    spawn_iter = iter(spawn_counts)
    while outstanding:
        credit = outstanding.pop(0)
        spawned = next(spawn_iter, 0)
        shares, kept = split_credit(credit, spawned)
        assert sum(shares) + kept == credit
        outstanding.extend(shares)
        pool.give_back(kept)
        # The pool is complete iff nothing is outstanding.
        assert pool.complete == (not outstanding)
    assert pool.complete


def test_no_premature_completion_with_reordered_acks():
    """The exact race that broke spawned-minus-one counting: a child's ack
    arriving before its parent's.  With credits, order cannot matter."""
    pool = CreditPool()
    (root,) = pool.hand_out(1)
    # Root spawns one child; the child's ack (its full share) arrives first.
    shares, root_kept = split_credit(root, 1)
    child = shares[0]
    child_shares, child_kept = split_credit(child, 0)
    pool.give_back(child_kept)       # child acks first
    assert not pool.complete         # parent's credit still out
    pool.give_back(root_kept)
    assert pool.complete
