"""Unit and integration tests for adaptive threshold tuning (section 3)."""

import pytest

from repro import GcConfig
from repro.analysis import Oracle
from repro.core.backtrace.messages import TraceOutcome
from repro.core.tuning import ThresholdTuner
from repro.errors import ConfigError
from repro.gc.inrefs import InrefTable
from repro.gc.outrefs import OutrefTable
from repro.workloads import GraphBuilder, build_ring_cycle

from ..conftest import collect_until_clean, make_sim


def make_tuner(threshold=4, **kwargs):
    inrefs = InrefTable("P", suspicion_threshold=threshold, initial_back_threshold=12)
    outrefs = OutrefTable("P", initial_back_threshold=12)
    return ThresholdTuner(inrefs, outrefs=outrefs, assumed_cycle_length=8, **kwargs), inrefs, outrefs


def test_live_heavy_window_raises_threshold():
    tuner, inrefs, outrefs = make_tuner(window=4)
    for _ in range(4):
        tuner.observe(TraceOutcome.LIVE)
    assert inrefs.suspicion_threshold == 6
    assert inrefs.initial_back_threshold == 14
    assert outrefs.initial_back_threshold == 14
    assert tuner.adjustments_up == 1


def test_garbage_only_window_lowers_toward_floor():
    tuner, inrefs, _ = make_tuner(window=2)
    # Raise first.
    tuner.observe(TraceOutcome.LIVE)
    tuner.observe(TraceOutcome.LIVE)
    assert inrefs.suspicion_threshold == 6
    # Two garbage-only windows drift back to the floor.
    for _ in range(4):
        tuner.observe(TraceOutcome.GARBAGE)
    assert inrefs.suspicion_threshold == 4
    assert tuner.adjustments_down == 2


def test_never_below_floor_or_above_ceiling():
    tuner, inrefs, _ = make_tuner(window=1, ceiling=7)
    for _ in range(10):
        tuner.observe(TraceOutcome.GARBAGE)
    assert inrefs.suspicion_threshold == 4  # the floor
    for _ in range(10):
        tuner.observe(TraceOutcome.LIVE)
    assert inrefs.suspicion_threshold == 7  # the ceiling


def test_mixed_window_below_trigger_no_change():
    tuner, inrefs, _ = make_tuner(window=4, live_ratio_trigger=0.75)
    for verdict in (TraceOutcome.LIVE, TraceOutcome.GARBAGE,
                    TraceOutcome.LIVE, TraceOutcome.GARBAGE):
        tuner.observe(verdict)
    assert inrefs.suspicion_threshold == 4
    assert tuner.adjustments_up == 0 and tuner.adjustments_down == 0


@pytest.mark.parametrize(
    "kwargs",
    [
        {"window": 0},
        {"live_ratio_trigger": 0.0},
        {"live_ratio_trigger": 1.5},
        {"increase_step": 0},
        {"ceiling": 1},
    ],
)
def test_invalid_parameters_rejected(kwargs):
    with pytest.raises(ConfigError):
        make_tuner(**kwargs)


def _churn_live_chains(tuning_enabled, generations=6):
    """Repeatedly build fresh live chains (new iorefs trigger abortive
    traces each time); return (sim, abortive trace count, raises)."""
    gc = GcConfig(
        suspicion_threshold=2,
        assumed_cycle_length=1,   # trigger early: abortive traces abound
        enable_threshold_tuning=tuning_enabled,
    )
    sites = [f"s{i}" for i in range(6)]
    sim = make_sim(sites=sites, gc=gc)
    b = GraphBuilder(sim)
    root = b.obj("s0", root=True)
    previous_head = None
    for _ in range(generations):
        members = [b.obj(site) for site in sites[1:]]
        sim.site("s0").mutator_add_ref(root, members[0])
        b.link(members[0], members[1])
        for left, right in zip(members[1:], members[2:]):
            b.link(left, right)
        if previous_head is not None:
            sim.site("s0").mutator_remove_ref(root, previous_head)
        previous_head = members[0]
        for _ in range(6):
            sim.run_gc_round()
    raises = sum(
        site.tuner.adjustments_up
        for site in sim.sites.values()
        if site.tuner is not None
    )
    return sim, sim.metrics.count("backtrace.completed_live"), raises


def test_tuning_reduces_abortive_traces_on_live_churn():
    """End to end A/B: recurring fresh live chains provoke abortive traces;
    the tuner raises T so later generations are no longer suspected, cutting
    the abortive trace count versus the untuned system."""
    _, abortive_untuned, _ = _churn_live_chains(tuning_enabled=False)
    sim, abortive_tuned, raises = _churn_live_chains(tuning_enabled=True)
    assert raises >= 1
    assert abortive_tuned < abortive_untuned
    # At least one site now holds a raised threshold.
    assert any(
        site.inrefs.suspicion_threshold > 2 for site in sim.sites.values()
    )


def test_tuning_preserves_completeness():
    """Raised thresholds must not stop garbage collection: distances grow
    past any finite T."""
    gc = GcConfig(
        suspicion_threshold=2,
        assumed_cycle_length=1,
        enable_threshold_tuning=True,
    )
    sites = [f"s{i}" for i in range(5)]
    sim = make_sim(sites=sites, gc=gc)
    # A live chain that provokes upward tuning...
    b = GraphBuilder(sim)
    root = b.obj("s0", "root", root=True)
    members = [b.obj(site) for site in sites[1:]]
    b.link(root, members[0])
    for left, right in zip(members, members[1:]):
        b.link(left, right)
    # ...plus a garbage ring that must still die.
    ring = build_ring_cycle(sim, sites)
    for _ in range(3):
        sim.run_gc_round()
    ring.make_garbage(sim)
    oracle = Oracle(sim)
    collect_until_clean(sim, oracle, max_rounds=100)
