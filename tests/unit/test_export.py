"""Unit tests for snapshot/DOT export."""

import json

from repro.analysis.export import graph_diff, graph_snapshot, to_dot
from repro.workloads import GraphBuilder, build_ring_cycle

from ..conftest import make_sim


def build_world():
    sim = make_sim(sites=("P", "Q"))
    b = GraphBuilder(sim)
    root = b.obj("P", "root", root=True)
    p, q = b.obj("P", "p"), b.obj("Q", "q")
    b.link(root, p)
    b.link(p, q)
    b.link(q, p)
    return sim, b


def test_snapshot_is_json_serializable():
    sim, b = build_world()
    data = graph_snapshot(sim)
    json.dumps(data)  # must not raise
    assert set(data["sites"]) == {"P", "Q"}
    assert str(b["root"]) in data["sites"]["P"]["objects"]
    assert data["sites"]["P"]["objects"][str(b["root"])]["persistent_root"]


def test_snapshot_records_ioref_state():
    sim, b = build_world()
    data = graph_snapshot(sim)
    q_inrefs = data["sites"]["Q"]["inrefs"]
    assert q_inrefs[str(b["q"])]["sources"] == {"P": 1}
    p_outrefs = data["sites"]["P"]["outrefs"]
    assert str(b["q"]) in p_outrefs


def test_diff_snapshots_tracks_deaths():
    sim, b = build_world()
    before = graph_snapshot(sim)
    sim.site("P").mutator_remove_ref(b["root"], b["p"])
    for _ in range(30):
        sim.run_gc_round()
        from repro.analysis import Oracle
        if not Oracle(sim).garbage_set():
            break
    after = graph_snapshot(sim)
    delta = graph_diff(before, after)
    assert str(b["p"]) in delta["P"]["objects_died"]
    assert str(b["q"]) in delta["Q"]["objects_died"]


def test_dot_output_structure():
    sim, b = build_world()
    dot = to_dot(sim)
    assert dot.startswith("digraph")
    assert 'subgraph "cluster_P"' in dot
    assert f'"{b["p"]}" -> "{b["q"]}"' in dot  # cross-site edge
    assert "doubleoctagon" in dot              # the persistent root
    assert dot.strip().endswith("}")


def test_dot_marks_suspected_and_garbage():
    sim, b = build_world()
    entry = sim.site("Q").inrefs.require(b["q"])
    entry.sources["P"] = 99
    dot = to_dot(sim)
    assert "orange" in dot
    entry.garbage = True
    dot = to_dot(sim)
    assert "red" in dot


def test_dot_includes_inset_overlay():
    sim = make_sim(sites=("P", "Q"))
    workload = build_ring_cycle(sim, ["P", "Q"])
    workload.make_garbage(sim)
    for site in sim.sites.values():
        for entry in site.inrefs.entries():
            for source in entry.sources:
                entry.sources[source] = 9
        site.run_local_trace()
    sim.settle()
    dot = to_dot(sim)
    assert 'label="inset"' in dot


def test_dot_highlight_and_crash_annotations():
    sim, b = build_world()
    sim.site("Q").crash()
    dot = to_dot(sim, highlight={b["p"]})
    assert "penwidth=3" in dot
    assert "CRASHED" in dot
