"""Unit tests for the Simulation facade."""

import pytest

from repro import Simulation, SimulationConfig
from repro.errors import SimulationError
from repro.ids import ObjectId
from repro.workloads import GraphBuilder


def test_add_site_and_lookup():
    sim = Simulation(SimulationConfig(seed=0))
    site = sim.add_site("P", auto_gc=False)
    assert sim.site("P") is site
    assert sim.site_of(ObjectId("P", 0)) is site


def test_duplicate_site_rejected():
    sim = Simulation(SimulationConfig(seed=0))
    sim.add_site("P", auto_gc=False)
    with pytest.raises(SimulationError):
        sim.add_site("P")


def test_unknown_site_rejected():
    sim = Simulation(SimulationConfig(seed=0))
    with pytest.raises(SimulationError):
        sim.site("Z")


def test_add_sites_bulk():
    sim = Simulation(SimulationConfig(seed=0))
    sites = sim.add_sites(["a", "b", "c"], auto_gc=False)
    assert [s.site_id for s in sites] == ["a", "b", "c"]


def test_total_objects_and_ids():
    sim = Simulation(SimulationConfig(seed=0))
    sim.add_sites(["P", "Q"], auto_gc=False)
    b = GraphBuilder(sim)
    b.obj("P")
    b.obj("Q")
    b.obj("Q")
    assert sim.total_objects() == 3
    assert len(sim.all_object_ids()) == 3


def test_settle_reaches_quiescence():
    sim = Simulation(SimulationConfig(seed=0))
    sim.add_sites(["P", "Q"], auto_gc=False)
    b = GraphBuilder(sim)
    root = b.obj("P", root=True)
    far = b.obj("Q")
    b.link(root, far)
    sim.site("P").run_local_trace()
    sim.settle()
    assert sim.network.in_flight_messages() == []


def test_settle_raises_if_never_quiet():
    sim = Simulation(SimulationConfig(seed=0))
    sim.add_site("P", auto_gc=False)

    def forever():
        sim.scheduler.schedule(10.0, forever)

    forever()
    with pytest.raises(SimulationError):
        sim.settle(quiet_time=50.0, max_rounds=5)


def test_auto_gc_runs_periodic_traces():
    sim = Simulation(SimulationConfig(seed=0))
    site = sim.add_site("P", auto_gc=True)
    site.heap.alloc()  # garbage from the start
    sim.run_for(5 * sim.config.gc.local_trace_period)
    # Every period ticks, but once the heap is quiescent the incremental
    # planner resolves ticks as skips instead of redundant full traces.
    ticks = site.collector.traces_run + sim.metrics.count("gc.traces_skipped")
    assert ticks >= 3
    assert site.collector.traces_run >= 1
    assert sim.metrics.count("gc.traces_skipped") >= 1
    assert len(site.heap) == 0


def test_manual_mode_runs_no_traces():
    sim = Simulation(SimulationConfig(seed=0))
    site = sim.add_site("P", auto_gc=False)
    site.heap.alloc()
    sim.run_for(5 * sim.config.gc.local_trace_period)
    assert site.collector.traces_run == 0
    assert len(site.heap) == 1


def test_run_gc_round_skips_crashed_sites():
    sim = Simulation(SimulationConfig(seed=0))
    sim.add_sites(["P", "Q"], auto_gc=False)
    sim.site("Q").crash()
    sim.run_gc_round()
    assert sim.site("P").collector.traces_run == 1
    assert sim.site("Q").collector.traces_run == 0


def test_trace_outcomes_recorded_once_per_trace():
    from repro.workloads import build_ring_cycle
    from repro.core.backtrace.messages import TraceOutcome

    sim = Simulation(SimulationConfig(seed=0))
    sim.add_sites(["P", "Q"], auto_gc=False)
    workload = build_ring_cycle(sim, ["P", "Q"])
    for _ in range(2):
        sim.run_gc_round()
    workload.make_garbage(sim)
    for _ in range(30):
        sim.run_gc_round()
    garbage_outcomes = [
        outcome for outcome in sim.trace_outcomes if outcome[3] is TraceOutcome.GARBAGE
    ]
    assert len(garbage_outcomes) == 1


def test_deterministic_replay():
    def run():
        sim = Simulation(SimulationConfig(seed=99))
        sim.add_sites(["P", "Q", "R"], auto_gc=True)
        from repro.workloads import build_random_clustered_graph
        build_random_clustered_graph(sim, ["P", "Q", "R"], objects_per_site=15, seed=3)
        sim.run_for(1000.0)
        return (
            sim.metrics.count("messages.total"),
            sim.total_objects(),
            sim.scheduler.events_fired,
        )

    assert run() == run()
