"""Delta-encoded update protocol: diffing, ordering, gap repair, degradation."""

import pytest

from repro import GcConfig, Simulation, SimulationConfig
from repro.analysis import Oracle
from repro.gc.inrefs import InrefTable
from repro.gc.update import UpdateDeltaPayload, UpdatePayload, apply_update_delta
from repro.ids import ObjectId
from repro.metrics import names
from repro.net.faults import FaultPlan
from repro.net.message import Message
from repro.workloads import GraphBuilder, build_ring_cycle

from ..conftest import make_sim
from .test_localtrace import make_collector

SITES = [f"s{i}" for i in range(6)]
TUNING = dict(
    suspicion_threshold=2,
    assumed_cycle_length=2,
    back_threshold_increment=1,
)


# -- building deltas at the collector ----------------------------------------


def test_first_trace_is_full_then_quiescent_tick_sends_nothing():
    c = make_collector()
    root = c.heap.alloc(persistent_root=True)
    remote = ObjectId("R", 0)
    root.add_ref(remote)
    c.outrefs.ensure(remote)
    first = c.run()
    assert first.updates_by_site["R"].full  # periodic full anchors the chain
    second = c.run()
    assert "R" not in second.updates_by_site  # empty diff -> no message at all


def test_distance_change_travels_as_delta_change():
    c = make_collector()
    held = c.heap.alloc()
    remote = ObjectId("R", 0)
    held.add_ref(remote)
    c.inrefs.ensure(held.oid, source="P", distance=3)
    c.outrefs.ensure(remote)
    c.run()  # full: (remote, 4)
    c.inrefs.require(held.oid).set_source_distance("P", 5)
    result = c.run()
    payload = result.updates_by_site["R"]
    assert isinstance(payload, UpdateDeltaPayload)
    assert payload.distances == ((remote, 6),)
    assert payload.adds == () and payload.removals == ()


def test_new_outref_travels_as_delta_add():
    c = make_collector()
    root = c.heap.alloc(persistent_root=True)
    first = ObjectId("R", 0)
    root.add_ref(first)
    c.outrefs.ensure(first)
    c.run()
    second = ObjectId("R", 1)
    root.add_ref(second)
    c.outrefs.ensure(second)
    result = c.run()
    payload = result.updates_by_site["R"]
    assert isinstance(payload, UpdateDeltaPayload)
    assert payload.adds == ((second, 1),)
    assert payload.distances == () and payload.removals == ()


def test_delta_apply_folds_adds_changes_and_removals():
    inrefs = InrefTable("B", 4, 0)
    kept = ObjectId("B", 0)
    dropped = ObjectId("B", 1)
    inrefs.ensure(kept, source="A", distance=1)
    inrefs.ensure(dropped, source="A", distance=1)
    changed = apply_update_delta(
        inrefs,
        "A",
        UpdateDeltaPayload(adds=(), distances=((kept, 7),), removals=(dropped,)),
    )
    assert changed
    assert inrefs.require(kept).sources["A"] == 7
    assert dropped not in inrefs  # sole source removed -> inref dies
    # Stale news about references the receiver never registered is ignored.
    ghost = ObjectId("B", 2)
    assert not apply_update_delta(
        inrefs, "A", UpdateDeltaPayload(adds=((ghost, 3),), removals=(ghost,))
    )


# -- ordering: gaps, refresh repair, duplicates ------------------------------


def _anchored_pair():
    """A root at A holding an outref to B, traced once: B anchored at seq 1."""
    sim = make_sim(sites=("A", "B"))
    b = GraphBuilder(sim)
    root = b.obj("A", "root", root=True)
    target = b.obj("B", "t")
    b.link(root, target)
    sim.site("A").run_local_trace()
    sim.settle()
    assert sim.site("B")._update_anchor["A"] == 1
    return sim, b


def test_gap_requests_refresh_and_full_update_reanchors():
    sim, _ = _anchored_pair()
    receiver = sim.site("B")
    # Forge a delta two sequences ahead: seq 2 "was lost".
    receiver.receive(
        Message(src="A", dst="B", payload=UpdateDeltaPayload(seq=3))
    )
    assert sim.metrics.count(names.UPDATE_GAPS_DETECTED) == 1
    assert sim.metrics.count(names.UPDATE_REFRESHES_REQUESTED) == 1
    assert "A" in receiver._update_unanchored
    sim.settle()  # refresh request -> A serves a full -> B re-anchors
    assert sim.metrics.count(names.UPDATE_REFRESHES_SERVED) == 1
    assert "A" not in receiver._update_unanchored
    assert receiver._update_anchor["A"] == 2


def test_duplicate_of_applied_delta_is_reacked_not_reapplied():
    sim, b = _anchored_pair()
    receiver = sim.site("B")
    target = b["t"]
    dup = Message(
        src="A",
        dst="B",
        payload=UpdateDeltaPayload(distances=((target, 9),), seq=2),
    )
    receiver.receive(dup)
    assert receiver.inrefs.require(target).sources["A"] == 9
    receiver.inrefs.require(target).set_source_distance("A", 4)
    receiver.receive(dup)  # replay: suppressed, graph untouched
    assert receiver.inrefs.require(target).sources["A"] == 4
    assert sim.metrics.count(names.dup_suppressed("UpdateDeltaPayload")) == 1
    assert receiver._update_anchor["A"] == 2


def test_gapped_delta_is_never_recorded_as_seen():
    sim = make_sim(sites=("A", "B"))
    receiver = sim.site("B")
    gapped = Message(src="A", dst="B", payload=UpdateDeltaPayload(seq=5))
    receiver.receive(gapped)
    receiver.receive(gapped)  # duplicate of a *rejected* delta
    # Both deliveries took the gap path: no ack, nothing in the dedup window
    # (an ack would cancel the sender's retransmission ladder -- the repair
    # backstop -- for a payload we never applied).
    assert sim.metrics.count(names.UPDATE_GAPS_DETECTED) == 2
    window = receiver._update_dedup.get("A")
    assert window is None or (window.high_water == 0 and window.pending_gaps == 0)


# -- twin equivalence and fault tolerance ------------------------------------


def _run_scenario(seed, **features):
    sim = make_sim(seed=seed, sites=SITES, gc=GcConfig(**TUNING, **features))
    live = build_ring_cycle(sim, SITES)
    doomed = build_ring_cycle(sim, SITES[:4])
    oracle = Oracle(sim)
    for _ in range(2):
        sim.run_gc_round()
        oracle.check_safety()
    doomed.make_garbage(sim)
    for _ in range(30):
        sim.run_gc_round()
        oracle.check_safety()
    heaps = {s: frozenset(sim.site(s).heap.object_ids()) for s in SITES}
    return sim, oracle, heaps, live


@pytest.mark.parametrize("seed", [0, 7])
def test_delta_and_full_snapshot_twins_collect_identically(seed):
    sim_on, oracle_on, heaps_on, live = _run_scenario(seed)
    sim_off, oracle_off, heaps_off, _ = _run_scenario(seed, delta_updates=False)
    assert not oracle_on.garbage_set()
    assert not oracle_off.garbage_set()
    for member in live.cycle:
        assert sim_on.site(member.site).heap.contains(member)
    assert heaps_on == heaps_off
    assert sim_on.metrics.count(names.UPDATE_DELTAS_SENT) > 0
    assert sim_off.metrics.count(names.UPDATE_DELTAS_SENT) == 0


def test_delta_protocol_survives_loss_and_duplication():
    plan = FaultPlan.loss(0.3, end=150.0).merge(
        FaultPlan.duplication(0.3, copies=1, lag=5.0, end=150.0)
    )
    gc = GcConfig(**TUNING, update_retransmit_timeout=20.0)
    sim = Simulation.create(SimulationConfig(seed=3, gc=gc), fault_plan=plan)
    sim.add_sites(SITES, auto_gc=False)
    live = build_ring_cycle(sim, SITES)
    doomed = build_ring_cycle(sim, SITES[:4])
    oracle = Oracle(sim)
    doomed.make_garbage(sim)
    for _ in range(40):
        sim.run_gc_round()
        oracle.check_safety()
        if not oracle.garbage_set():
            break
    assert not oracle.garbage_set()
    for member in live.cycle:
        assert sim.site(member.site).heap.contains(member)
    assert sim.metrics.count(names.UPDATE_DELTAS_SENT) > 0


# -- degradation without the reliable channel --------------------------------


def test_delta_without_reliable_channel_warns_and_degrades():
    with pytest.warns(RuntimeWarning, match="delta_updates requires reliable_updates"):
        sim = make_sim(sites=("A", "B"), gc=GcConfig(reliable_updates=False))
    b = GraphBuilder(sim)
    root = b.obj("A", "root", root=True)
    target = b.obj("B", "t")
    b.link(root, target)
    a = sim.site("A")
    a.run_local_trace()
    sim.settle()
    # Change a distance so a second trace has something to report.
    held = b.obj("A", "held")
    b.link(held, target)
    a.inrefs.ensure(b["held"], source="B", distance=1)
    a.run_local_trace(force_full=True)
    sim.settle()
    assert sim.metrics.count(names.msg_sent("UpdateDeltaPayload")) == 0
    assert sim.metrics.count(names.msg_sent("UpdatePayload")) >= 1
    assert sim.metrics.count(names.UPDATE_DELTAS_SENT) == 0
