"""Round-trip property tests for the packed cross-shard wire format.

The parallel engine's twin guarantee leans on ``unpack(pack(batch))``
reproducing the routed batch *exactly* -- same payload values, same uid and
dup flag, same delivery times.  Hypothesis generates every packed payload
kind (including the field-less and empty-collection shapes) plus adversarial
values that must demote cleanly to the pickled fallback.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass

from hypothesis import given, settings
from hypothesis import strategies as st

from fractions import Fraction

from repro.core.backtrace.messages import (
    BackCall,
    BackCallBatch,
    BackOutcome,
    BackReply,
    BackReplyBatch,
    TraceOutcome,
)
from repro.core.termination import (
    TrialAbort,
    TrialAck,
    TrialCollect,
    TrialMark,
    TrialRescue,
    TrialRescueStart,
)
from repro.errors import SimulationError
from repro.gc.insert import InsertDone, InsertRequest, UnpinRequest
from repro.gc.update import (
    UpdateAck,
    UpdateDeltaPayload,
    UpdatePayload,
    UpdateRefreshRequest,
)
from repro.ids import FrameId, ObjectId, TraceId
from repro.mutator.ops import MutatorHop, RemoteCopy
from repro.net.message import Message, Payload
from repro.net.wire import WireCodec

import pytest

SITES = [f"w{i:02d}" for i in range(12)]

sites = st.sampled_from(SITES)
serials = st.integers(min_value=0, max_value=2**40)
seqs = st.integers(min_value=-1, max_value=2**40)
oids = st.builds(ObjectId, site=sites, serial=serials)
distances = st.integers(min_value=0, max_value=2**31 - 1)
dist_pairs = st.lists(st.tuples(oids, distances), max_size=8).map(tuple)
oid_tuples = st.lists(oids, max_size=8).map(tuple)
trace_ids = st.builds(TraceId, initiator=sites, seq=serials)
frame_ids = st.builds(FrameId, site=sites, seq=serials)
verdicts = st.sampled_from([TraceOutcome.LIVE, TraceOutcome.GARBAGE])
opt_sites = st.none() | sites
opt_times = st.none() | st.floats(
    min_value=0.0, max_value=1e12, allow_nan=False
)

trial_keys = st.tuples(sites, serials)
#: Credits the compact `<qq` encoding must carry exactly (i64 num/den).
credits = st.builds(
    Fraction,
    st.integers(min_value=0, max_value=2**31),
    st.integers(min_value=1, max_value=2**31),
)
site_tuples = st.lists(sites, max_size=6).map(tuple)

back_calls = st.builds(
    BackCall, trace_id=trace_ids, target=oids, reply_to=frame_ids, seq=seqs
)
back_replies = st.builds(
    BackReply,
    trace_id=trace_ids,
    reply_to=frame_ids,
    verdict=verdicts,
    participants=st.frozensets(sites, max_size=6),
    cache_expires_at=opt_times,
    timed_out=st.booleans(),
)

payloads = st.one_of(
    st.builds(
        UpdatePayload,
        distances=dist_pairs,
        removals=oid_tuples,
        full=st.booleans(),
        seq=seqs,
    ),
    st.builds(
        UpdateDeltaPayload,
        adds=dist_pairs,
        distances=dist_pairs,
        removals=oid_tuples,
        seq=seqs,
    ),
    st.just(UpdateRefreshRequest()),
    st.builds(UpdateAck, seq=seqs),
    back_calls,
    back_replies,
    st.builds(
        BackOutcome,
        trace_id=trace_ids,
        verdict=verdicts,
        cache_expires_at=opt_times,
    ),
    st.builds(BackCallBatch, calls=st.lists(back_calls, max_size=5).map(tuple)),
    st.builds(
        BackReplyBatch, replies=st.lists(back_replies, max_size=5).map(tuple)
    ),
    st.builds(
        InsertRequest,
        target=oids,
        pin_holder=opt_sites,
        release_owner_custody=st.booleans(),
        seq=seqs,
    ),
    st.builds(InsertDone, target=oids, seq=seqs),
    st.builds(UnpinRequest, target=oids, seq=seqs),
    st.builds(
        MutatorHop,
        mutator=st.text(max_size=12),
        target=oids,
        seq=seqs,
    ),
    st.builds(
        RemoteCopy,
        ref=oids,
        dest_holder=oids,
        pin_holder=opt_sites,
        seq=seqs,
    ),
    st.builds(
        TrialMark, trial=trial_keys, targets=oid_tuples, credit=credits, seq=seqs
    ),
    st.builds(
        TrialRescueStart,
        trial=trial_keys,
        member_sites=site_tuples,
        credit=credits,
        seq=seqs,
    ),
    st.builds(
        TrialRescue,
        trial=trial_keys,
        targets=oid_tuples,
        member_sites=site_tuples,
        credit=credits,
        seq=seqs,
    ),
    st.builds(
        TrialAck,
        trial=trial_keys,
        phase=st.sampled_from(["mark", "rescue"]),
        credit=credits,
        joined=st.booleans(),
        dirty=st.booleans(),
        seq=seqs,
    ),
    st.builds(TrialCollect, trial=trial_keys, seq=seqs),
    st.builds(TrialAbort, trial=trial_keys, seq=seqs),
)

routed = st.tuples(
    st.floats(min_value=0.0, max_value=1e12, allow_nan=False),
    st.builds(
        Message,
        src=sites,
        dst=sites,
        payload=payloads,
        uid=st.integers(min_value=0, max_value=2**62),
        dup=st.booleans(),
    ),
)


@given(st.lists(routed, max_size=12))
@settings(max_examples=300, deadline=None)
def test_blob_roundtrip_is_identity(batch):
    codec = WireCodec(SITES)
    assert codec.unpack_blob(codec.pack_routed(batch)) == batch


@given(st.lists(routed, max_size=12))
@settings(max_examples=100, deadline=None)
def test_scan_headers_match_and_reframe_losslessly(batch):
    codec = WireCodec(SITES)
    blob = codec.pack_routed(batch)
    scanned = list(codec.scan_blob(blob))
    assert len(scanned) == len(batch)
    records = []
    for (deliver_at, dst, src, kind, uid, record), (t, message) in zip(
        scanned, batch
    ):
        assert deliver_at == t
        assert codec.sites[src] == message.src
        assert codec.sites[dst] == message.dst
        assert uid == message.uid
        # Every generated payload fits the compact encoding.
        assert kind != 0
        records.append(record)
    # Routing never decodes payloads: re-framing scanned records into a new
    # blob (what _take_pending does per window) must be lossless.
    assert codec.unpack_blob(codec.pack_blob(records)) == batch


@given(routed)
@settings(max_examples=100, deadline=None)
def test_single_record_roundtrip(pair):
    codec = WireCodec(SITES)
    deliver_at, message = pair
    blob = codec.pack_blob([codec.pack_record(deliver_at, message)])
    assert codec.unpack_blob(blob) == [pair]


# -- edge cases the generators cannot be trusted to always hit ---------------


def _roundtrip_one(payload, dup=False):
    codec = WireCodec(SITES)
    batch = [
        (12.5, Message(src="w00", dst="w03", payload=payload, uid=7, dup=dup))
    ]
    unpacked = codec.unpack_blob(codec.pack_routed(batch))
    assert unpacked == batch
    return codec, batch


def test_empty_delta_roundtrip():
    _roundtrip_one(UpdateDeltaPayload(adds=(), distances=(), removals=(), seq=3))


def test_refresh_request_roundtrip():
    _roundtrip_one(UpdateRefreshRequest())


def test_empty_update_and_batches_roundtrip():
    _roundtrip_one(UpdatePayload(distances=(), removals=(), full=True, seq=0))
    _roundtrip_one(BackCallBatch(calls=()))
    _roundtrip_one(BackReplyBatch(replies=()))


def test_dup_flag_survives():
    codec, batch = _roundtrip_one(UpdateAck(seq=5), dup=True)
    [(_, message)] = codec.unpack_blob(codec.pack_routed(batch))
    assert message.dup is True


def test_out_of_range_distance_demotes_to_pickled_fallback():
    # A distance beyond i32 cannot use the compact encoding; the record
    # must fall back to pickling and still round-trip exactly.
    codec = WireCodec(SITES)
    payload = UpdatePayload(
        distances=((ObjectId("w01", 4), 2**40),), removals=(), seq=1
    )
    batch = [(1.0, Message(src="w00", dst="w01", payload=payload, uid=1))]
    blob = codec.pack_routed(batch)
    [(_, _, _, kind, _, _)] = list(codec.scan_blob(blob))
    assert kind == 0
    assert codec.unpack_blob(blob) == batch


def test_oversized_credit_demotes_to_pickled_fallback():
    # Repeated splits can push a credit's denominator past i64; the compact
    # `<qq` encoding must refuse it and the record still round-trip.
    codec = WireCodec(SITES)
    payload = TrialMark(
        trial=("w01", 7),
        targets=(ObjectId("w02", 3),),
        credit=Fraction(1, 2**80),
        seq=4,
    )
    batch = [(2.0, Message(src="w01", dst="w02", payload=payload, uid=11))]
    blob = codec.pack_routed(batch)
    [(_, _, _, kind, _, _)] = list(codec.scan_blob(blob))
    assert kind == 0
    assert codec.unpack_blob(blob) == batch


def test_unknown_trial_phase_demotes_to_pickled_fallback():
    codec = WireCodec(SITES)
    payload = TrialAck(
        trial=("w00", 1), phase="weird", credit=Fraction(1, 2), seq=1
    )
    batch = [(2.0, Message(src="w03", dst="w00", payload=payload, uid=12))]
    blob = codec.pack_routed(batch)
    [(_, _, _, kind, _, _)] = list(codec.scan_blob(blob))
    assert kind == 0
    assert codec.unpack_blob(blob) == batch


@dataclass(frozen=True)
class Oddball(Payload):
    """A payload class the codec has no packer for (module-level: picklable)."""

    note: str = "anything pickles"


def test_unregistered_payload_class_uses_pickled_fallback():
    codec = WireCodec(SITES)
    batch = [
        (3.0, Message(src="w02", dst="w05", payload=Oddball(), uid=9))
    ]
    blob = codec.pack_routed(batch)
    [(_, _, _, kind, _, _)] = list(codec.scan_blob(blob))
    assert kind == 0
    assert codec.unpack_blob(blob) == batch


def test_site_index_order_is_lexicographic():
    # The coordinator sorts packed records by (deliver_at, src index, uid)
    # in place of the sequential engine's (deliver_at, src, uid): valid only
    # because interned index order equals lexicographic SiteId order.
    shuffled = ["w05", "w01", "w09", "w02"]
    codec = WireCodec(shuffled)
    assert list(codec.sites) == sorted(shuffled)
    assert [codec.site_index(s) for s in sorted(shuffled)] == [0, 1, 2, 3]


def test_codec_rejects_oversized_site_tables():
    with pytest.raises(SimulationError):
        WireCodec([f"x{i}" for i in range(0xFFFF)])


def test_record_length_mismatch_is_detected():
    codec = WireCodec(SITES)
    payload = UpdateAck(seq=2)
    blob = bytearray(
        codec.pack_routed(
            [(1.0, Message(src="w00", dst="w01", payload=payload, uid=1))]
        )
    )
    blob.extend(b"\x00" * 4)  # trailing garbage inside the framed record
    # Corrupt the framed length so decode and frame disagree.
    import struct

    header = struct.Struct("<BBHHqdI")
    fields = list(header.unpack_from(blob, 4))
    fields[-1] += 4
    header.pack_into(blob, 4, *fields)
    with pytest.raises(SimulationError, match="length mismatch"):
        codec.unpack_blob(bytes(blob))


# -- window reply metadata ---------------------------------------------------


def test_reply_meta_roundtrip():
    from repro.net.wire import pack_reply_meta, unpack_reply_meta

    data = pack_reply_meta(12.5, 20.5, 42)
    assert isinstance(data, bytes) and len(data) == 24
    assert unpack_reply_meta(data) == (12.5, 20.5, 42)


def test_reply_meta_packs_infinities_exactly():
    from repro.net.wire import pack_reply_meta, unpack_reply_meta

    inf = float("inf")
    next_time, eot, fired = unpack_reply_meta(pack_reply_meta(inf, inf, 0))
    assert next_time == inf and eot == inf and fired == 0


# -- ring meta and bare records ----------------------------------------------


def test_ring_meta_roundtrip_and_empty_section():
    from repro.net.wire import (
        REPLY_META_BYTES,
        pack_reply_meta,
        pack_ring_meta,
        unpack_reply_meta,
        unpack_ring_meta,
    )

    entries = [(0, 3, 1024, 12.5), (2, 1, 96, float("inf"))]
    section = pack_ring_meta(entries)
    assert unpack_ring_meta(section) == tuple(entries)
    # No ring traffic -> no section at all: the reply meta stays the bare
    # 24-byte trailer and the coordinator detects the rings by extra length.
    assert pack_ring_meta([]) == b""
    trailer = pack_reply_meta(1.0, 2.0, 3) + section
    assert len(trailer) > REPLY_META_BYTES
    assert unpack_reply_meta(trailer) == (1.0, 2.0, 3)
    assert unpack_ring_meta(trailer[REPLY_META_BYTES:]) == tuple(entries)


def test_bare_record_scan_and_unpack_roundtrip():
    # Rings carry bare records (the ring frames them itself): scan_record
    # must agree with the scan_blob header fields, and unpack_record must
    # reproduce the routed message exactly.
    codec = WireCodec(SITES)
    message = Message(
        src="w03", dst="w07", payload=UpdateAck(seq=9), uid=41, dup=True
    )
    record = codec.pack_record(6.25, message)
    deliver_at, dst, src, kind, uid = codec.scan_record(record)
    assert (deliver_at, uid) == (6.25, 41)
    assert codec.sites[src] == "w03" and codec.sites[dst] == "w07"
    [(b_at, b_dst, b_src, b_kind, b_uid, view)] = list(
        codec.scan_blob(codec.pack_blob([record]))
    )
    assert (b_at, b_dst, b_src, b_kind, b_uid) == (
        deliver_at, dst, src, kind, uid,
    )
    assert bytes(view) == record
    assert codec.unpack_record(record) == (6.25, message)


def test_unpack_record_rejects_length_mismatch():
    import struct

    codec = WireCodec(SITES)
    record = bytearray(
        codec.pack_record(
            1.0, Message(src="w00", dst="w01", payload=UpdateAck(seq=2), uid=1)
        )
    )
    record.extend(b"\x00" * 4)
    header = struct.Struct("<BBHHqdI")
    fields = list(header.unpack_from(record, 0))
    fields[-1] += 4
    header.pack_into(record, 0, *fields)
    with pytest.raises(SimulationError, match="length mismatch"):
        codec.unpack_record(bytes(record))
