"""Edge cases of the back-trace engine: stale replies, deletions mid-trace,
duplicate outcomes, empty insets, and self-cycles."""

from repro import GcConfig
from repro.core.backtrace.messages import BackOutcome, BackReply, TraceOutcome
from repro.ids import FrameId, TraceId
from repro.workloads import GraphBuilder

from ..conftest import make_sim

SUSPECT = 9


def prepare_cycle(sim):
    b = GraphBuilder(sim)
    p, q = b.obj("P", "p"), b.obj("Q", "q")
    b.link(p, q)
    b.link(q, p)
    for site in sim.sites.values():
        for entry in site.inrefs.entries():
            for source in entry.sources:
                entry.sources[source] = SUSPECT
    for site_id in sorted(sim.sites):
        sim.sites[site_id].run_local_trace()
    sim.settle()
    return b


def test_stale_reply_for_unknown_frame_ignored():
    sim = make_sim(sites=("P", "Q"))
    prepare_cycle(sim)
    ghost_reply = BackReply(
        trace_id=TraceId("Q", 77),
        reply_to=FrameId("P", 12345),
        verdict=TraceOutcome.LIVE,
        participants=frozenset({"Q"}),
    )
    sim.site("Q").send("P", ghost_reply)
    sim.settle()
    assert sim.metrics.count("backtrace.stale_replies") == 1


def test_duplicate_outcome_harmless():
    sim = make_sim(sites=("P", "Q"))
    b = prepare_cycle(sim)
    trace_id = sim.site("P").engine.start_trace(b["q"])
    sim.settle()
    # Re-deliver the outcome: the record is gone, so nothing happens.
    sim.site("P").send("Q", BackOutcome(trace_id=trace_id, verdict=TraceOutcome.GARBAGE))
    sim.settle()
    assert sim.site("Q").inrefs.require(b["q"]).garbage


def test_outcome_for_unknown_trace_ignored():
    sim = make_sim(sites=("P", "Q"))
    prepare_cycle(sim)
    sim.site("P").send(
        "Q", BackOutcome(trace_id=TraceId("P", 404), verdict=TraceOutcome.GARBAGE)
    )
    sim.settle()  # must not raise


def test_outref_with_empty_inset_answers_garbage():
    """An outref reachable from nothing (inset empty) has no backward path:
    the local step closes immediately as Garbage."""
    sim = make_sim(sites=("P", "Q"))
    b = GraphBuilder(sim)
    p, q = b.obj("P", "p"), b.obj("Q", "q")
    b.link(p, q)  # one-way only: P's outref q exists, but p is garbage too
    for site in sim.sites.values():
        for entry in site.inrefs.entries():
            for source in entry.sources:
                entry.sources[source] = SUSPECT
    for site_id in sorted(sim.sites):
        sim.sites[site_id].run_local_trace()
    sim.settle()
    # p was unreferenced: P's local trace already collected it and trimmed
    # the outref, so there is nothing to trace from -- which is the point:
    # acyclic garbage never needs back tracing.
    assert not sim.site("P").heap.contains(p)
    assert b["q"] not in sim.site("P").outrefs


def test_self_cycle_object_with_remote_holder():
    """An object referencing itself plus a remote cycle partner."""
    sim = make_sim(sites=("P", "Q"))
    b = GraphBuilder(sim)
    p, q = b.obj("P", "p"), b.obj("Q", "q")
    b.link(p, p)  # self loop
    b.link(p, q)
    b.link(q, p)
    prepare = prepare_cycle  # reuse suspicion helper pattern
    for site in sim.sites.values():
        for entry in site.inrefs.entries():
            for source in entry.sources:
                entry.sources[source] = SUSPECT
    for site_id in sorted(sim.sites):
        sim.sites[site_id].run_local_trace()
    sim.settle()
    trace_id = sim.site("P").engine.start_trace(b["q"])
    assert trace_id is not None
    sim.settle()
    assert sim.trace_outcomes[-1][3] is TraceOutcome.GARBAGE
    sim.run_gc_round()
    assert not sim.site("P").heap.contains(p)
    assert not sim.site("Q").heap.contains(q)


def test_ioref_deleted_while_other_trace_active():
    """The Boyapati fix: one trace's outcome deletes iorefs while another
    trace is active there; the second trace still completes via its frames."""
    sim = make_sim(sites=("P", "Q"), gc=GcConfig(backtrace_timeout=100.0))
    b = prepare_cycle(sim)
    engine_p = sim.site("P").engine
    engine_q = sim.site("Q").engine
    first = engine_p.start_trace(b["q"])
    second = engine_q.start_trace(b["p"])
    assert first is not None and second is not None
    sim.settle()
    sim.run_for(1000.0)  # let any timeouts resolve stragglers
    # Both traces reached a verdict; no frames are stuck anywhere.
    assert engine_p.active_trace_count == 0
    assert engine_q.active_trace_count == 0
    finished = {outcome[2] for outcome in sim.trace_outcomes}
    assert {first, second} <= finished


def test_trace_ids_unique_per_initiator():
    sim = make_sim(sites=("P", "Q"))
    b = prepare_cycle(sim)
    first = sim.site("P").engine.start_trace(b["q"])
    sim.settle()
    sim.run_for(1500.0)
    # Restore suspicion (the Live/garbage outcome may have flagged/cleaned).
    for entry in sim.site("P").outrefs.entries():
        entry.traced_clean = False
    second = sim.site("P").engine.start_trace(b["q"])
    if second is not None:
        assert second != first
