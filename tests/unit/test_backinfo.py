"""Unit tests for back-information computation (section 5).

Covers the two algorithms on the paper's own examples (Figures 2 and 4) and
corner cases: strongly connected components, shared chains, clean stops, and
equality between the independent and bottom-up algorithms.
"""

import pytest

from repro.core.backinfo import (
    TraceEnvironment,
    compute_outsets_bottom_up,
    compute_outsets_independent,
    invert_outsets,
)
from repro.ids import ObjectId
from repro.store.heap import Heap

ALGORITHMS = [compute_outsets_independent, compute_outsets_bottom_up]


def env_for(heap, clean_objects=(), clean_outrefs=()):
    clean_out = set(clean_outrefs)
    return TraceEnvironment(
        heap=heap,
        clean_objects=set(clean_objects),
        is_clean_outref=lambda ref: ref in clean_out,
    )


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_figure4_backward_edge(algorithm):
    """Figure 4: plain tracing misses outref c; SCC handling must not.

    Site Q holds inrefs a and b.  a -> z, b -> y -> z, z -> x -> y (back
    edge), x -> c (remote), y -> d (remote).  y, z, x form an SCC, so the
    outsets of a and b must both contain both c and d.
    """
    heap = Heap("Q")
    a, b, x, y, z = (heap.alloc() for _ in range(5))
    c = ObjectId("P", 0)
    d = ObjectId("R", 0)
    a.add_ref(z.oid)
    b.add_ref(y.oid)
    y.add_ref(z.oid)
    y.add_ref(d)
    z.add_ref(x.oid)
    x.add_ref(y.oid)
    x.add_ref(c)

    result = algorithm(env_for(heap), [a.oid, b.oid])
    assert result.outsets[a.oid] == {c, d}
    assert result.outsets[b.oid] == {c, d}


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_figure2_insets(algorithm):
    """Figure 2, site Q: inset of outref c must be {a, b}; of d, {b}."""
    heap = Heap("Q")
    a, b = heap.alloc(), heap.alloc()
    c = ObjectId("P", 0)
    d = ObjectId("R", 5)
    a.add_ref(c)
    b.add_ref(c)
    b.add_ref(d)

    result = algorithm(env_for(heap), [a.oid, b.oid])
    insets = invert_outsets(result.outsets)
    assert insets[c] == {a.oid, b.oid}
    assert insets[d] == {b.oid}


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_clean_objects_stop_the_trace(algorithm):
    heap = Heap("Q")
    a, mid = heap.alloc(), heap.alloc()
    remote = ObjectId("P", 0)
    a.add_ref(mid.oid)
    mid.add_ref(remote)
    result = algorithm(env_for(heap, clean_objects=[mid.oid]), [a.oid])
    assert result.outsets[a.oid] == frozenset()
    assert mid.oid not in result.visited_objects


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_clean_outrefs_excluded(algorithm):
    heap = Heap("Q")
    a = heap.alloc()
    clean_remote = ObjectId("P", 0)
    dirty_remote = ObjectId("P", 1)
    a.add_ref(clean_remote)
    a.add_ref(dirty_remote)
    result = algorithm(env_for(heap, clean_outrefs=[clean_remote]), [a.oid])
    assert result.outsets[a.oid] == {dirty_remote}


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_clean_inref_target_yields_empty_outset(algorithm):
    heap = Heap("Q")
    a = heap.alloc()
    a.add_ref(ObjectId("P", 0))
    result = algorithm(env_for(heap, clean_objects=[a.oid]), [a.oid])
    assert result.outsets[a.oid] == frozenset()


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_missing_inref_target_yields_empty_outset(algorithm):
    heap = Heap("Q")
    ghost = ObjectId("Q", 404)
    result = algorithm(env_for(heap), [ghost])
    assert result.outsets[ghost] == frozenset()


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_self_loop_object(algorithm):
    heap = Heap("Q")
    a = heap.alloc()
    remote = ObjectId("P", 2)
    a.add_ref(a.oid)
    a.add_ref(remote)
    result = algorithm(env_for(heap), [a.oid])
    assert result.outsets[a.oid] == {remote}


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_long_chain_no_recursion_limit(algorithm):
    heap = Heap("Q")
    objects = [heap.alloc() for _ in range(5000)]
    for left, right in zip(objects, objects[1:]):
        left.add_ref(right.oid)
    remote = ObjectId("P", 0)
    objects[-1].add_ref(remote)
    result = algorithm(env_for(heap), [objects[0].oid])
    assert result.outsets[objects[0].oid] == {remote}


def test_bottom_up_scans_each_object_once():
    heap = Heap("Q")
    shared = [heap.alloc() for _ in range(20)]
    for left, right in zip(shared, shared[1:]):
        left.add_ref(right.oid)
    remote = ObjectId("P", 0)
    shared[-1].add_ref(remote)
    heads = [heap.alloc() for _ in range(10)]
    for head in heads:
        head.add_ref(shared[0].oid)
    roots = [head.oid for head in heads]
    bottom_up = compute_outsets_bottom_up(env_for(heap), roots)
    independent = compute_outsets_independent(env_for(heap), roots)
    assert bottom_up.outsets == independent.outsets
    assert bottom_up.objects_scanned == 30  # each object once
    assert independent.objects_scanned == 10 * 21  # heads retrace the chain


def test_bottom_up_scc_members_share_one_outset():
    heap = Heap("Q")
    ring = [heap.alloc() for _ in range(6)]
    for left, right in zip(ring, ring[1:] + ring[:1]):
        left.add_ref(right.oid)
    remote = ObjectId("P", 0)
    ring[3].add_ref(remote)
    result = compute_outsets_bottom_up(env_for(heap), [obj.oid for obj in ring])
    outsets = {result.outsets[obj.oid] for obj in ring}
    assert outsets == {frozenset({remote})}
    assert result.distinct_outsets == 1


def test_nested_sccs_cross_edges():
    """Two SCCs, the first pointing into the second: outsets must cascade."""
    heap = Heap("Q")
    a1, a2 = heap.alloc(), heap.alloc()
    b1, b2 = heap.alloc(), heap.alloc()
    remote = ObjectId("P", 0)
    a1.add_ref(a2.oid)
    a2.add_ref(a1.oid)
    b1.add_ref(b2.oid)
    b2.add_ref(b1.oid)
    a2.add_ref(b1.oid)  # cross edge SCC-A -> SCC-B
    b2.add_ref(remote)
    for algorithm in ALGORITHMS:
        result = algorithm(env_for(heap), [a1.oid, b1.oid])
        assert result.outsets[a1.oid] == {remote}
        assert result.outsets[b1.oid] == {remote}


def test_diamond_shares_memoized_unions():
    heap = Heap("Q")
    top, left, right, bottom = (heap.alloc() for _ in range(4))
    r1, r2 = ObjectId("P", 0), ObjectId("R", 1)
    top.add_ref(left.oid)
    top.add_ref(right.oid)
    left.add_ref(bottom.oid)
    right.add_ref(bottom.oid)
    left.add_ref(r1)
    right.add_ref(r2)
    result = compute_outsets_bottom_up(env_for(heap), [top.oid])
    assert result.outsets[top.oid] == {r1, r2}


def test_invert_outsets_round_trip():
    a, b = ObjectId("Q", 0), ObjectId("Q", 1)
    c, d = ObjectId("P", 0), ObjectId("R", 0)
    outsets = {a: frozenset({c}), b: frozenset({c, d})}
    insets = invert_outsets(outsets)
    assert insets == {c: frozenset({a, b}), d: frozenset({b})}
