"""The collector registry, config plumbing, deprecation shims, and facade."""

import warnings

import pytest

import repro
import repro.api as api
from repro.config import GcConfig, SimulationConfig
from repro.core.collector import (
    _REGISTRY,
    CollectorSpec,
    NullCollector,
    available_collectors,
    register_collector,
    resolve_collector,
)
from repro.errors import ConfigError, SimulationError
from repro.sim.simulation import Simulation

BUILTINS = {
    "backtrace",
    "termination",
    "null",
    "baseline.global",
    "baseline.hughes",
    "baseline.migration",
    "baseline.group",
    "baseline.central",
    "baseline.trial",
}


# -- registry ---------------------------------------------------------------


def test_available_collectors_lists_every_builtin():
    assert BUILTINS <= set(available_collectors())


def test_every_builtin_resolves_to_a_spec():
    for name in sorted(BUILTINS):
        spec = resolve_collector(name)
        assert spec.name == name
        assert callable(spec.site_factory)


def test_unknown_name_raises_config_error_listing_available():
    with pytest.raises(ConfigError, match="available.*backtrace"):
        resolve_collector("nonsense")


def test_register_rejects_empty_name():
    with pytest.raises(ConfigError, match="non-empty"):
        register_collector(CollectorSpec(name="", site_factory=NullCollector))


def test_runtime_registration_and_replacement():
    spec = CollectorSpec(name="custom-test", site_factory=NullCollector)
    register_collector(spec)
    try:
        assert resolve_collector("custom-test") is spec
        assert "custom-test" in available_collectors()
    finally:
        _REGISTRY.pop("custom-test", None)


# -- config plumbing --------------------------------------------------------


def test_config_rejects_empty_collector_name():
    with pytest.raises(ConfigError, match="collector"):
        GcConfig(collector="")


def test_simulation_create_resolves_name_at_construction():
    config = SimulationConfig(gc=GcConfig(collector="nonsense"))
    with pytest.raises(ConfigError, match="unknown collector"):
        Simulation.create(config)


def test_sites_get_the_configured_backend():
    sim = Simulation.create(
        SimulationConfig(gc=GcConfig(collector="termination"))
    )
    site = sim.add_site("a", auto_gc=False)
    assert site.cycle_collector.name == "termination"
    sim2 = Simulation.create(SimulationConfig())
    assert sim2.add_site("a", auto_gc=False).cycle_collector.name == "backtrace"


# -- driver-style backends --------------------------------------------------


def test_per_site_backend_has_no_driver():
    sim = Simulation.create(SimulationConfig())
    sim.add_site("a", auto_gc=False)
    with pytest.raises(SimulationError, match="no .*driver"):
        sim.collector_driver


def test_driver_backend_builds_driver_lazily_without_warning():
    sim = Simulation.create(
        SimulationConfig(gc=GcConfig(collector="baseline.trial"))
    )
    sim.add_sites(["a", "b"], auto_gc=False)
    # Per-site strategies under a driver backend are null: the driver does
    # the distributed part against the running simulation.
    assert sim.site("a").cycle_collector.name == "null"
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        driver = sim.collector_driver
    assert sim.collector_driver is driver  # cached, built once


# -- deprecation shims ------------------------------------------------------


def test_direct_baseline_construction_warns():
    from repro.baselines.trialdeletion import TrialDeletionCollector

    sim = Simulation.create(SimulationConfig(gc=GcConfig(collector="null")))
    sim.add_sites(["a", "b"], auto_gc=False)
    with pytest.warns(DeprecationWarning, match="baseline.trial"):
        TrialDeletionCollector(sim)


# -- the stable facade ------------------------------------------------------


def test_api_facade_exports_every_declared_name():
    for name in api.__all__:
        assert getattr(api, name) is not None


def test_package_root_reexports_the_facade():
    for name in api.__all__:
        assert getattr(repro, name) is getattr(api, name), name
