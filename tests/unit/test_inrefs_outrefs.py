"""Unit tests for the inref and outref tables."""

import pytest

from repro.errors import GcInvariantError
from repro.gc.inrefs import INFINITE_DISTANCE, InrefTable
from repro.gc.outrefs import OutrefTable
from repro.ids import ObjectId, TraceId


def make_inrefs(threshold=4, back=12):
    return InrefTable("R", suspicion_threshold=threshold, initial_back_threshold=back)


def make_outrefs(back=12):
    return OutrefTable("P", initial_back_threshold=back)


# -- inrefs ---------------------------------------------------------------------


def test_inref_ensure_creates_with_conservative_distance():
    table = make_inrefs()
    entry = table.ensure(ObjectId("R", 0), source="P")
    assert entry.sources == {"P": 1}
    assert entry.distance == 1
    assert entry.back_threshold == 12


def test_inref_rejects_foreign_target():
    table = make_inrefs()
    with pytest.raises(GcInvariantError):
        table.ensure(ObjectId("Q", 0), source="P")


def test_inref_distance_is_min_over_sources():
    table = make_inrefs()
    entry = table.ensure(ObjectId("R", 0), source="P", distance=7)
    entry.add_source("Q", 3)
    assert entry.distance == 3


def test_add_source_keeps_smaller_estimate():
    table = make_inrefs()
    entry = table.ensure(ObjectId("R", 0), source="P", distance=2)
    entry.add_source("P", 9)
    assert entry.sources["P"] == 2


def test_set_source_distance_is_authoritative_increase():
    table = make_inrefs()
    entry = table.ensure(ObjectId("R", 0), source="P", distance=2)
    entry.set_source_distance("P", 9)
    assert entry.sources["P"] == 9


def test_set_source_distance_ignores_unknown_source():
    table = make_inrefs()
    entry = table.ensure(ObjectId("R", 0), source="P")
    entry.set_source_distance("Q", 5)
    assert "Q" not in entry.sources


def test_empty_inref_has_infinite_distance():
    table = make_inrefs()
    entry = table.ensure(ObjectId("R", 0), source="P")
    entry.remove_source("P")
    assert entry.distance == INFINITE_DISTANCE
    assert entry.empty


def test_remove_source_drops_empty_entry():
    table = make_inrefs()
    target = ObjectId("R", 0)
    table.ensure(target, source="P")
    table.remove_source(target, "P")
    assert target not in table


def test_clean_vs_suspected_by_threshold():
    table = make_inrefs(threshold=4)
    near = table.ensure(ObjectId("R", 0), source="P", distance=4)
    far = table.ensure(ObjectId("R", 1), source="P", distance=5)
    assert near.is_clean(4) and not near.is_suspected(4)
    assert far.is_suspected(4) and not far.is_clean(4)
    assert {e.target for e in table.suspected_entries()} == {far.target}


def test_barrier_clean_overrides_distance():
    table = make_inrefs(threshold=4)
    entry = table.ensure(ObjectId("R", 0), source="P", distance=99)
    entry.barrier_clean = True
    assert entry.is_clean(4)
    table.reset_barrier_cleans()
    assert entry.is_suspected(4)


def test_garbage_flag_is_never_clean():
    table = make_inrefs(threshold=4)
    entry = table.ensure(ObjectId("R", 0), source="P", distance=1)
    entry.garbage = True
    assert not entry.is_clean(4)
    assert entry.target not in set(table.root_targets())
    assert table.garbage_targets() == [entry.target]


def test_entries_by_distance_ordering():
    table = make_inrefs()
    table.ensure(ObjectId("R", 0), source="P", distance=9)
    table.ensure(ObjectId("R", 1), source="P", distance=2)
    table.ensure(ObjectId("R", 2), source="P", distance=5)
    distances = [e.distance for e in table.entries_by_distance()]
    assert distances == [2, 5, 9]


# -- outrefs ---------------------------------------------------------------------


def test_outref_ensure_and_lookup():
    table = make_outrefs()
    entry = table.ensure(ObjectId("R", 0))
    assert entry.is_clean
    assert ObjectId("R", 0) in table
    assert entry.back_threshold == 12


def test_outref_rejects_local_target():
    table = make_outrefs()
    with pytest.raises(GcInvariantError):
        table.ensure(ObjectId("P", 0))


def test_outref_cleanliness_sources():
    table = make_outrefs()
    entry = table.ensure(ObjectId("R", 0), clean=False)
    assert entry.is_suspected
    entry.barrier_clean = True
    assert entry.is_clean
    entry.barrier_clean = False
    entry.pin()
    assert entry.is_clean
    entry.unpin()
    assert entry.is_suspected


def test_unbalanced_unpin_raises():
    table = make_outrefs()
    entry = table.ensure(ObjectId("R", 0))
    with pytest.raises(GcInvariantError):
        entry.unpin()


def test_visited_marks_are_per_trace():
    table = make_outrefs()
    entry = table.ensure(ObjectId("R", 0), clean=False)
    t1, t2 = TraceId("P", 0), TraceId("Q", 0)
    entry.visited.add(t1)
    assert t1 in entry.visited and t2 not in entry.visited


def test_inset_storage_units():
    table = make_outrefs()
    e1 = table.ensure(ObjectId("R", 0), clean=False)
    e2 = table.ensure(ObjectId("R", 1), clean=False)
    e1.inset = frozenset({ObjectId("P", 1), ObjectId("P", 2)})
    e2.inset = frozenset({ObjectId("P", 1)})
    assert table.inset_storage_units() == 3


def test_suspected_entries_view():
    table = make_outrefs()
    table.ensure(ObjectId("R", 0), clean=False)
    table.ensure(ObjectId("R", 1), clean=True)
    assert [e.target for e in table.suspected_entries()] == [ObjectId("R", 0)]
    assert [e.target for e in table.clean_entries()] == [ObjectId("R", 1)]
