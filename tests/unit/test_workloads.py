"""Unit tests for workload generators and the graph builder."""

import pytest

from repro.analysis import Oracle
from repro.errors import SimulationError
from repro.workloads import (
    GraphBuilder,
    build_chain_across_sites,
    build_clique_cycle,
    build_hypertext_web,
    build_random_clustered_graph,
    build_ring_cycle,
)

from ..conftest import make_sim


def test_builder_labels_and_resolution():
    sim = make_sim(sites=("P",))
    b = GraphBuilder(sim)
    oid = b.obj("P", "a")
    assert b["a"] == oid
    assert b.resolve("a") == oid
    assert b.resolve(oid) == oid
    with pytest.raises(SimulationError):
        b["nope"]
    with pytest.raises(SimulationError):
        b.obj("P", "a")


def test_builder_link_maintains_tables():
    sim = make_sim(sites=("P", "Q"))
    b = GraphBuilder(sim)
    src = b.obj("P", "src")
    dst = b.obj("Q", "dst")
    b.link(src, dst)
    assert dst in sim.site("P").outrefs
    assert "P" in sim.site("Q").inrefs.require(dst).sources


def test_builder_local_link_no_tables():
    sim = make_sim(sites=("P",))
    b = GraphBuilder(sim)
    src, dst = b.obj("P", "s"), b.obj("P", "d")
    b.link(src, dst)
    assert len(sim.site("P").outrefs) == 0
    assert len(sim.site("P").inrefs) == 0


def test_link_cycle_closes_loop():
    sim = make_sim(sites=("P", "Q"))
    b = GraphBuilder(sim)
    x, y = b.obj("P", "x"), b.obj("Q", "y")
    b.link_cycle([x, y])
    assert sim.site("P").heap.get(x).holds_ref(y)
    assert sim.site("Q").heap.get(y).holds_ref(x)


def test_ring_cycle_shape():
    sim = make_sim(sites=("P", "Q", "R"))
    w = build_ring_cycle(sim, ["P", "Q", "R"], objects_per_site=2)
    assert len(w.cycle) == 6
    assert w.inter_site_edges == 3
    oracle = Oracle(sim)
    assert oracle.garbage_set() == set()
    w.make_garbage(sim)
    assert set(w.cycle) <= oracle.garbage_set()
    assert oracle.distributed_cyclic_garbage() >= set(w.cycle)


def test_clique_cycle_edge_count():
    sim = make_sim(sites=("P", "Q", "R"))
    w = build_clique_cycle(sim, ["P", "Q", "R"])
    assert w.inter_site_edges == 6
    outref_counts = sum(len(sim.site(s).outrefs) for s in ("P", "Q", "R"))
    assert outref_counts == 6


def test_chain_is_acyclic_garbage_when_cut():
    sim = make_sim(sites=("P", "Q", "R"))
    w = build_chain_across_sites(sim, ["P", "Q", "R"])
    oracle = Oracle(sim)
    w.make_garbage(sim)
    assert set(w.cycle) <= oracle.garbage_set()
    assert oracle.distributed_cyclic_garbage() == set()


def test_random_clustered_graph_statistics():
    sim = make_sim(sites=("A", "B", "C", "D"))
    w = build_random_clustered_graph(
        sim, ["A", "B", "C", "D"], objects_per_site=30, seed=3
    )
    assert len(w.objects) == 120
    assert w.roots
    total_remote = len(w.inter_site_edges)
    assert 0 < total_remote < w.local_edges


def test_random_clustered_graph_deterministic():
    sim1 = make_sim(sites=("A", "B"))
    sim2 = make_sim(sites=("A", "B"))
    w1 = build_random_clustered_graph(sim1, ["A", "B"], seed=5)
    w2 = build_random_clustered_graph(sim2, ["A", "B"], seed=5)
    assert w1.inter_site_edges == w2.inter_site_edges


def test_hypertext_web_structure():
    sim = make_sim(sites=("P", "Q", "R"))
    web = build_hypertext_web(sim, ["P", "Q", "R"], documents_per_site=2, seed=1)
    assert len(web.documents) == 6
    assert web.catalog in sim.site("P").heap.persistent_roots
    assert web.catalog_entries
    # Every document has its sections linked both ways.
    doc = web.documents[0]
    heap = sim.site(doc.site).heap
    for section in doc.sections:
        assert heap.get(doc.title_page).holds_ref(section)
        assert heap.get(section).holds_ref(doc.title_page)


def test_hypertext_unlink_creates_garbage_sometimes():
    sim = make_sim(sites=("P", "Q", "R"))
    web = build_hypertext_web(
        sim, ["P", "Q", "R"], documents_per_site=3, citations_per_document=1,
        catalog_fraction=1.0, seed=2,
    )
    oracle = Oracle(sim)
    assert oracle.garbage_set() == set()
    for index in list(web.catalog_entries):
        web.unlink_from_catalog(sim, index)
    # With every catalog entry cut, all documents are garbage.
    garbage = oracle.garbage_set()
    for doc in web.documents:
        assert set(doc.objects) <= garbage
