"""Simulation.create: one front door for both engines, with deprecations."""

import warnings

import pytest

import repro.analysis.export as export
from repro import (
    FaultPlan,
    NetworkConfig,
    ParallelSimulation,
    Simulation,
    SimulationConfig,
)
from repro.metrics import names

PARALLEL_NETWORK = NetworkConfig(min_latency=5.0, max_latency=20.0, pair_rng_streams=True)


def test_create_returns_sequential_engine_for_one_worker():
    sim = Simulation.create(SimulationConfig(seed=1))
    assert type(sim) is Simulation


def test_create_returns_parallel_engine_for_many_workers_without_warning():
    config = SimulationConfig(seed=1, network=PARALLEL_NETWORK, parallel_workers=2)
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        sim = Simulation.create(config)
    assert isinstance(sim, ParallelSimulation)
    sim.close()


def test_create_with_default_config():
    sim = Simulation.create()
    assert type(sim) is Simulation
    sim.add_sites(["P"], auto_gc=False)
    sim.run_for(5.0)


def test_direct_parallel_construction_is_deprecated():
    config = SimulationConfig(seed=1, network=PARALLEL_NETWORK, parallel_workers=2)
    with pytest.warns(DeprecationWarning, match="Simulation.create"):
        sim = ParallelSimulation(config)
    sim.close()


def test_create_threads_fault_plan_to_the_network():
    plan = FaultPlan.loss(0.5, end=100.0)
    sim = Simulation.create(SimulationConfig(seed=1), fault_plan=plan)
    assert sim.network.fault_plan is plan


def test_create_on_subclass_respects_the_subclass():
    config = SimulationConfig(seed=1, network=PARALLEL_NETWORK, parallel_workers=2)
    sim = ParallelSimulation.create(config)
    assert isinstance(sim, ParallelSimulation)
    sim.close()


# -- old observation-surface names -------------------------------------------


def test_old_export_names_warn_but_still_work():
    with pytest.warns(DeprecationWarning, match="graph_snapshot"):
        assert export.snapshot is export.graph_snapshot
    with pytest.warns(DeprecationWarning, match="graph_diff"):
        assert export.diff_snapshots is export.graph_diff


def test_counter_name_constants_match_the_wire_spellings():
    assert names.MSG_LOST == "messages.lost"
    assert names.MSG_DROPPED_CRASH == "messages.dropped.crash"
    assert names.msg_dropped_kind("UpdatePayload") == "messages.dropped.UpdatePayload"
    assert names.dup_suppressed("BackCall") == "protocol.dup_suppressed.BackCall"
