"""Verdict caching, trace coalescing, and call batching (engine extensions).

Topology helper: a two-site cycle p(P) <-> q(Q) anchored live by a root at a
third site R holding a reference to p.  Back traces over it conclude Live
(R's outref for p is clean), so the participants cache the verdict.
"""

import pytest

from repro import GcConfig, NetworkConfig
from repro.core.backtrace.frames import INREF, OUTREF
from repro.core.backtrace.messages import TraceOutcome
from repro.workloads import GraphBuilder

from ..conftest import make_sim

SUSPECT = 9  # any distance above the default threshold of 4


def suspect_all_inrefs(sim):
    for site in sim.sites.values():
        for entry in site.inrefs.entries():
            for source in entry.sources:
                entry.sources[source] = SUSPECT


def prepare(sim):
    """Force suspicion, compute insets, then force suspicion again.

    The first pass makes the local traces mark the cycle's outrefs suspected
    (``traced_clean`` is derived from inref suspicion at trace time); the
    second pass undoes the re-cleaning done by the traces' update messages
    (the anchor site reports a short distance for its inref), so a back
    trace has a suspected path to walk while the anchor's *outref* stays
    clean -- the grounding for a Live verdict.
    """
    suspect_all_inrefs(sim)
    for site_id in sorted(sim.sites):
        sim.sites[site_id].run_local_trace()
    sim.settle()
    suspect_all_inrefs(sim)


def fixed_latency_network():
    return NetworkConfig(min_latency=1.0, max_latency=1.0)


def build_anchored_cycle(sim):
    """p(P) <-> q(Q), anchored by a root at R -> p."""
    b = GraphBuilder(sim)
    p = b.obj("P", "p")
    q = b.obj("Q", "q")
    b.link(p, q)
    b.link(q, p)
    root = b.obj("R", "root", root=True)
    b.link(root, p)
    return b


def run_live_trace(sim, b):
    """Start a trace from P's outref for q; it must conclude Live."""
    trace_id = sim.site("P").engine.start_trace(b["q"])
    assert trace_id is not None
    sim.settle()
    assert sim.trace_outcomes[-1][3] is TraceOutcome.LIVE
    return trace_id


def test_live_trace_caches_verdict_and_skips_retrace():
    sim = make_sim(network=fixed_latency_network())
    b = build_anchored_cycle(sim)
    prepare(sim)
    run_live_trace(sim, b)
    engine = sim.site("P").engine
    # The Live footprint at P covers the visited outref and inref.
    assert engine.cached_live(b["q"])
    assert sim.metrics.count("backtrace.cache_stores") >= 1
    before = sim.metrics.snapshot()
    # Re-initiating answers from the cache: no trace, no messages.
    assert engine.start_trace(b["q"]) is None
    sim.settle()
    delta = sim.metrics.snapshot().diff(before)
    assert delta.get("backtrace.cache_hits", 0) >= 1
    assert delta.get("backtrace.started", 0) == 0
    assert delta.get("messages.BackCall", 0) == 0
    assert delta.get("messages.BackCallBatch", 0) == 0


def test_epoch_bump_between_completion_and_next_trigger_invalidates():
    sim = make_sim(network=fixed_latency_network())
    b = build_anchored_cycle(sim)
    prepare(sim)
    run_live_trace(sim, b)
    engine = sim.site("P").engine
    assert engine.cached_live(b["q"])
    # A distance update for the visited inref bumps its epoch: the snapshot
    # no longer matches and the cached verdict must not answer.
    sim.site("P").inrefs.require(b["p"]).set_source_distance("Q", SUSPECT + 3)
    assert not engine.cached_live(b["q"])
    assert sim.metrics.count("backtrace.cache_invalidated") >= 1
    # A fresh trace runs (and re-derives Live -- the anchor still exists).
    assert engine.start_trace(b["q"]) is not None
    sim.settle()
    assert sim.trace_outcomes[-1][3] is TraceOutcome.LIVE


def test_clean_rule_mid_cached_live_purges_cache():
    sim = make_sim(network=fixed_latency_network())
    b = build_anchored_cycle(sim)
    prepare(sim)
    run_live_trace(sim, b)
    engine = sim.site("P").engine
    assert engine.cached_live(b["q"])
    # The clean rule fires for the visited inref (e.g. a mutator arrived over
    # it): every cached verdict whose footprint includes it is purged.
    engine.notify_cleaned(INREF, b["p"])
    assert len(engine.cache) == 0
    assert not engine.cached_live(b["q"])


def test_structure_change_invalidates_via_entry_epoch():
    sim = make_sim(network=fixed_latency_network())
    b = build_anchored_cycle(sim)
    prepare(sim)
    run_live_trace(sim, b)
    engine = sim.site("P").engine
    assert engine.cached_live(b["q"])
    # A new source on the visited inref is a structure change.
    sim.site("P").inrefs.ensure(b["p"], source="X", distance=1)
    assert not engine.cached_live(b["q"])


def test_trigger_check_answers_from_cache_without_trace():
    sim = make_sim(network=fixed_latency_network())
    b = build_anchored_cycle(sim)
    prepare(sim)
    run_live_trace(sim, b)
    site = sim.site("P")
    # Push the outref past its (already ratcheted) back threshold so the
    # trigger would fire if the cache did not answer.
    entry = site.outrefs.require(b["q"])
    entry.distance = entry.back_threshold + 1
    before = sim.metrics.snapshot()
    assert site.check_backtrace_triggers() == []
    delta = sim.metrics.snapshot().diff(before)
    assert delta.get("backtrace.cache_hits", 0) >= 1
    assert delta.get("backtrace.started", 0) == 0


def test_coalesced_trace_receives_live_from_older_trace():
    # Caching off isolates the coalescing path (a cache hit at P would answer
    # the second trace before it ever reaches the first trace's frame).
    sim = make_sim(network=fixed_latency_network(), gc=GcConfig(backtrace_cache=False))
    b = build_anchored_cycle(sim)
    prepare(sim)
    t1 = sim.site("P").engine.start_trace(b["q"])
    t2 = sim.site("Q").engine.start_trace(b["p"])
    assert t1 is not None and t2 is not None
    sim.settle()
    verdicts = {outcome[2]: outcome[3] for outcome in sim.trace_outcomes}
    assert verdicts[t1] is TraceOutcome.LIVE
    assert verdicts[t2] is TraceOutcome.LIVE
    assert sim.metrics.count("backtrace.coalesced") >= 1


def test_coalescing_disabled_still_completes_both_traces():
    cfg = GcConfig(backtrace_cache=False, backtrace_coalesce=False)
    sim = make_sim(network=fixed_latency_network(), gc=cfg)
    b = build_anchored_cycle(sim)
    prepare(sim)
    t1 = sim.site("P").engine.start_trace(b["q"])
    t2 = sim.site("Q").engine.start_trace(b["p"])
    assert t1 is not None and t2 is not None
    sim.settle()
    verdicts = {outcome[2]: outcome[3] for outcome in sim.trace_outcomes}
    assert verdicts[t1] is TraceOutcome.LIVE
    assert verdicts[t2] is TraceOutcome.LIVE
    assert sim.metrics.count("backtrace.coalesced") == 0


def test_initiator_crash_timeout_live_is_not_cached():
    """Participants that never hear the outcome assume Live but cache nothing.

    A timeout-assumed Live rests on no evidence; caching it would let a dead
    initiator suppress re-examination for a whole TTL.
    """
    cfg = GcConfig(backtrace_timeout=30.0)
    sim = make_sim(sites=("P", "Q", "R"), network=fixed_latency_network(), gc=cfg)
    b = GraphBuilder(sim)
    p, q, r = b.obj("P", "p"), b.obj("Q", "q"), b.obj("R", "r")
    b.link(p, q)
    b.link(q, r)
    b.link(r, p)
    prepare(sim)
    trace_id = sim.site("P").engine.start_trace(b["q"])
    assert trace_id is not None
    # Let the first BackCall reach R, then lose the initiator: downstream
    # sites keep expanding, time out toward it, and never hear the outcome.
    sim.run_for(1.5)
    sim.site("P").crash()
    sim.run_for(10 * cfg.backtrace_timeout)
    assert sim.metrics.count("backtrace.outcome_timeouts") >= 1
    for site_id in ("Q", "R"):
        engine = sim.sites[site_id].engine
        assert engine.cache is not None and len(engine.cache) == 0
    # No verdict was applied as garbage anywhere.
    for site_id in ("Q", "R"):
        for entry in sim.sites[site_id].inrefs.entries():
            assert not entry.garbage


def test_back_calls_to_same_destination_ship_as_one_batch():
    """Two inrefs with a common source, reached by one fan-out, batch."""
    sim = make_sim(sites=("P", "Q"), network=fixed_latency_network())
    b = GraphBuilder(sim)
    # At Q: a -> c, b -> c, c -> p(P); at P: p -> a and p -> b.  A trace from
    # Q's outref for p fans out to inrefs a and b in one activation -- both
    # sourced from P, so the two BackCalls ride one BackCallBatch.
    a, bb, c = b.obj("Q", "a"), b.obj("Q", "b"), b.obj("Q", "c")
    p = b.obj("P", "p")
    b.link(a, c)
    b.link(bb, c)
    b.link(c, p)
    b.link(p, a)
    b.link(p, bb)
    prepare(sim)
    trace_id = sim.site("Q").engine.start_trace(b["p"])
    assert trace_id is not None
    sim.settle()
    assert sim.metrics.count("messages.BackCallBatch") >= 1
    assert sim.metrics.count("backtrace.calls_batched") >= 2
    # The structure is unanchored garbage: the trace must still conclude so.
    assert sim.trace_outcomes[-1][3] is TraceOutcome.GARBAGE


def test_batching_disabled_sends_plain_calls():
    cfg = GcConfig(backtrace_batch_calls=False)
    sim = make_sim(sites=("P", "Q"), network=fixed_latency_network(), gc=cfg)
    b = GraphBuilder(sim)
    a, bb, c = b.obj("Q", "a"), b.obj("Q", "b"), b.obj("Q", "c")
    p = b.obj("P", "p")
    b.link(a, c)
    b.link(bb, c)
    b.link(c, p)
    b.link(p, a)
    b.link(p, bb)
    prepare(sim)
    assert sim.site("Q").engine.start_trace(b["p"]) is not None
    sim.settle()
    assert sim.metrics.count("messages.BackCallBatch") == 0
    assert sim.metrics.count("messages.BackCall") >= 2
    assert sim.trace_outcomes[-1][3] is TraceOutcome.GARBAGE


def test_cached_live_expires_after_ttl():
    cfg = GcConfig(backtrace_cache_ttl_ticks=1)
    sim = make_sim(network=fixed_latency_network(), gc=cfg)
    b = build_anchored_cycle(sim)
    prepare(sim)
    run_live_trace(sim, b)
    engine = sim.site("P").engine
    assert engine.cached_live(b["q"])
    sim.run_for(2 * cfg.local_trace_period)
    assert not engine.cached_live(b["q"])


def test_threshold_change_invalidates_cached_live():
    sim = make_sim(network=fixed_latency_network())
    b = build_anchored_cycle(sim)
    prepare(sim)
    run_live_trace(sim, b)
    engine = sim.site("P").engine
    assert engine.cached_live(b["q"])
    # A tuned suspicion threshold changes which entries count as clean, so
    # the cached verdict's premises no longer hold.
    sim.site("P").inrefs.suspicion_threshold += 1
    assert not engine.cached_live(b["q"])
