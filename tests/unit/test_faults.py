"""Unit tests for the declarative fault-injection layer (repro.net.faults)."""

import random
from dataclasses import dataclass

import pytest

from repro.config import NetworkConfig
from repro.errors import ConfigError
from repro.metrics import MetricsRecorder, names
from repro.net.faults import FaultPlan, LinkFault, PartitionWindow, SiteCrash
from repro.net.latency import ConstantLatency
from repro.net.message import Payload
from repro.net.network import Network
from repro.sim.rng import RngRegistry
from repro.sim.scheduler import Scheduler


@dataclass(frozen=True)
class Ping(Payload):
    n: int = 0


def make_net(plan=None, seed=0, sites=("A", "B", "C")):
    sched = Scheduler()
    metrics = MetricsRecorder()
    net = Network(
        sched,
        RngRegistry(seed),
        metrics,
        config=NetworkConfig(),
        latency_model=ConstantLatency(1.0),
        fault_plan=plan,
    )
    inboxes = {s: [] for s in sites}
    for s in sites:
        net.register(s, (lambda sid: (lambda msg: inboxes[sid].append(msg)))(s))
    return sched, net, inboxes, metrics


# -- rule validation ---------------------------------------------------------


@pytest.mark.parametrize(
    "kwargs",
    [
        dict(loss=1.5),
        dict(duplicate_probability=-0.1),
        dict(reorder_probability=2.0),
        dict(start=-1.0),
        dict(start=10.0, end=10.0),
        dict(duplicate_copies=0),
        dict(duplicate_lag=-1.0),
        dict(reorder_delay=-1.0),
    ],
)
def test_link_fault_rejects_bad_parameters(kwargs):
    with pytest.raises(ConfigError):
        LinkFault(**kwargs)


def test_site_crash_and_partition_validation():
    with pytest.raises(ConfigError):
        SiteCrash(site="A", at=10.0, recover_at=5.0)
    with pytest.raises(ConfigError):
        PartitionWindow(groups=(), at=0.0)
    with pytest.raises(ConfigError):
        PartitionWindow(groups=(frozenset({"A"}),), at=10.0, heal_at=10.0)


def test_link_fault_matching_window_and_endpoints():
    rule = LinkFault(start=10.0, end=20.0, src="A", loss=0.5)
    assert not rule.matches(9.9, "A", "B")
    assert rule.matches(10.0, "A", "B")
    assert not rule.matches(20.0, "A", "B")  # end-exclusive
    assert not rule.matches(15.0, "C", "B")  # wrong sender
    rule = LinkFault(dst="B", loss=0.5)  # no end: never heals
    assert rule.matches(1e9, "A", "B")
    assert not rule.matches(1e9, "A", "C")


# -- roll semantics ----------------------------------------------------------


def test_roll_certain_loss_drops():
    plan = FaultPlan.loss(1.0)
    fate = plan.roll(0.0, "A", "B", random.Random(1))
    assert fate.drop and not fate.duplicate_lags


def test_roll_certain_duplication_yields_per_copy_lags():
    plan = FaultPlan.duplication(1.0, copies=3, lag=5.0)
    fate = plan.roll(0.0, "A", "B", random.Random(1))
    assert not fate.drop
    assert len(fate.duplicate_lags) == 3
    assert all(0.0 <= lag <= 5.0 for lag in fate.duplicate_lags)


def test_roll_certain_reorder_adds_bounded_delay():
    plan = FaultPlan.reorder_burst(1.0, delay=40.0)
    fate = plan.roll(0.0, "A", "B", random.Random(1))
    assert 0.0 <= fate.extra_delay <= 40.0


def test_roll_is_deterministic_in_the_rng():
    plan = FaultPlan.loss(0.3).merge(
        FaultPlan.duplication(0.4, copies=2, lag=10.0),
        FaultPlan.reorder_burst(0.5, delay=20.0),
    )
    fates_a = [plan.roll(1.0, "A", "B", random.Random(42)) for _ in range(1)]
    rng1, rng2 = random.Random(7), random.Random(7)
    seq1 = [plan.roll(float(t), "A", "B", rng1) for t in range(50)]
    seq2 = [plan.roll(float(t), "A", "B", rng2) for t in range(50)]
    assert seq1 == seq2
    assert fates_a == [plan.roll(1.0, "A", "B", random.Random(42))]


def test_roll_outside_window_draws_nothing():
    plan = FaultPlan.loss(1.0, start=100.0, end=200.0)
    rng = random.Random(3)
    before = rng.getstate()
    fate = plan.roll(50.0, "A", "B", rng)
    assert not fate.drop and rng.getstate() == before


# -- composition and schedules -----------------------------------------------


def test_merge_concatenates_rules_and_names():
    merged = FaultPlan.loss(0.2).merge(
        FaultPlan.duplication(0.1), FaultPlan.crash_window("A", at=5.0, recover_at=9.0)
    )
    assert len(merged.links) == 2 and len(merged.crashes) == 1
    assert merged.name == "loss20+dup10+crash:A"
    assert merged.named("storm").name == "storm"


def test_schedule_edges_are_time_sorted():
    plan = FaultPlan.crash_window("B", at=50.0, recover_at=90.0).merge(
        FaultPlan.partition_window(
            (frozenset({"A"}), frozenset({"B"})), at=10.0, heal_at=70.0
        )
    )
    edges = plan.schedule_edges()
    assert [time for time, _, _ in edges] == sorted(time for time, _, _ in edges)
    assert [action for _, action, _ in edges] == [
        "partition",
        "crash",
        "heal_partition",
        "recover",
    ]


def test_healed_at_and_is_empty():
    assert FaultPlan().is_empty
    assert FaultPlan().healed_at == 0.0
    assert FaultPlan.loss(0.2, end=300.0).healed_at == 300.0
    assert FaultPlan.loss(0.2).healed_at == float("inf")
    assert (
        FaultPlan.crash_window("A", at=5.0, recover_at=400.0).healed_at == 400.0
    )


# -- network integration -----------------------------------------------------


def test_network_drops_under_loss_plan_and_counts_reason():
    sched, net, inboxes, metrics = make_net(FaultPlan.loss(1.0, end=10.0))
    for n in range(3):
        net.send("A", "B", Ping(n))
    sched.schedule_at(11.0, lambda: net.send("A", "B", Ping(99)))
    sched.drain()
    # In-window sends die as fault drops; the post-heal send gets through.
    assert [m.payload.n for m in inboxes["B"]] == [99]
    assert metrics.count(names.msg_dropped_reason("fault")) == 3
    assert metrics.count(names.msg_dropped_kind("Ping")) == 3
    assert metrics.count(names.MSG_LOST) == 3
    assert metrics.count(names.msg_sent("Ping")) == 4


def test_network_duplication_accounts_copies_separately():
    plan = FaultPlan.duplication(1.0, copies=2, lag=5.0)
    sched, net, inboxes, metrics = make_net(plan)
    net.send("A", "B", Ping(1))
    sched.drain()
    assert [m.payload.n for m in inboxes["B"]] == [1, 1, 1]
    assert sum(1 for m in inboxes["B"] if m.dup) == 2
    assert metrics.count(names.msg_duplicated("Ping")) == 2
    assert metrics.count(names.msg_dup_delivered("Ping")) == 2
    # Originals reconcile without the copies polluting the books.
    assert metrics.count(names.msg_delivered_kind("Ping")) == 1
    assert metrics.count(names.msg_sent("Ping")) == 1


def test_network_reorder_burst_delays_but_keeps_pair_fifo():
    plan = FaultPlan.reorder_burst(1.0, delay=50.0)
    sched, net, inboxes, _ = make_net(plan)
    for n in range(20):
        net.send("A", "B", Ping(n))
    sched.drain()
    assert [m.payload.n for m in inboxes["B"]] == list(range(20))  # R1 holds
    assert sched.now > 1.0  # at least one message was actually held back


def test_inactive_plan_is_byte_identical_to_no_plan():
    future = FaultPlan.loss(1.0, start=1000.0, end=2000.0)
    runs = []
    for plan in (None, future):
        sched, net, inboxes, _ = make_net(plan, seed=5)
        for n in range(10):
            net.send("A", "B", Ping(n))
            net.send("B", "C", Ping(n))
        sched.drain()
        runs.append(
            (sched.now, [(m.src, m.payload.n) for m in inboxes["B"] + inboxes["C"]])
        )
    assert runs[0] == runs[1]


# -- the crash-counter bugfix ------------------------------------------------


def test_crash_drops_are_counted_at_send_and_in_flight():
    sched, net, inboxes, metrics = make_net()
    net.send("A", "B", Ping(1))  # in flight when the crash lands
    net.crash("B")
    net.send("A", "B", Ping(2))  # blocked at send time
    sched.drain()
    assert inboxes["B"] == []
    assert metrics.count(names.MSG_DROPPED_CRASH) == 2
    assert metrics.count(names.msg_dropped_kind("Ping")) == 2
    assert metrics.count(names.MSG_LOST) == 2
    assert metrics.count(names.msg_sent("Ping")) == 2


def test_partition_drops_are_counted_symmetrically():
    sched, net, inboxes, metrics = make_net()
    net.send("A", "B", Ping(1))
    net.partition({"A"}, {"B", "C"})
    net.send("A", "B", Ping(2))
    sched.drain()
    assert inboxes["B"] == []
    assert metrics.count(names.MSG_DROPPED_PARTITION) == 2
