"""Unit tests for the transfer barrier, insert barrier, and site protocols
(sections 2, 6.1, 6.2)."""

from repro import GcConfig
from repro.analysis import Oracle
from repro.core.backtrace.messages import TraceOutcome
from repro.workloads import GraphBuilder

from ..conftest import make_sim

SUSPECT = 9


def suspect_and_trace(sim, only=None):
    """Force all inref distances above the threshold, then run local traces.

    ``only`` limits which sites trace -- useful when the holders are rooted
    and tracing them would propagate fresh (small) distances that would undo
    the forced suspicion.
    """
    for site in sim.sites.values():
        for entry in site.inrefs.entries():
            for source in entry.sources:
                entry.sources[source] = SUSPECT
    for site_id in sorted(sim.sites) if only is None else only:
        sim.sites[site_id].run_local_trace()
    sim.settle()


# -- transfer barrier -----------------------------------------------------------


def test_transfer_barrier_cleans_inref_and_outset():
    sim = make_sim(sites=("P", "Q", "R"))
    b = GraphBuilder(sim)
    entry_obj = b.obj("Q", "entry")
    inner = b.obj("Q", "inner")
    b.link(entry_obj, inner)
    downstream = b.obj("R", "downstream")
    b.link(inner, downstream)
    holder = b.obj("P", "holder", root=True)
    b.link(holder, entry_obj)
    suspect_and_trace(sim, only=["Q"])
    q = sim.site("Q")
    assert q.inrefs.require(b["entry"]).is_suspected(4)
    assert not q.outrefs.require(b["downstream"]).is_clean

    q.barrier.on_reference_arrival(b["entry"])
    assert q.inrefs.require(b["entry"]).is_clean(4)
    assert q.outrefs.require(b["downstream"]).is_clean


def test_transfer_barrier_noop_for_clean_inref():
    sim = make_sim(sites=("P", "Q"))
    b = GraphBuilder(sim)
    target = b.obj("Q", "t")
    holder = b.obj("P", "h")
    b.link(holder, target)
    for site_id in sorted(sim.sites):
        sim.sites[site_id].run_local_trace()
    q = sim.site("Q")
    assert q.inrefs.require(b["t"]).is_clean(4)
    before = sim.metrics.count("barrier.transfer_applied")
    q.barrier.on_reference_arrival(b["t"])
    assert sim.metrics.count("barrier.transfer_applied") == before


def test_transfer_barrier_noop_without_inref():
    sim = make_sim(sites=("P",))
    b = GraphBuilder(sim)
    lone = b.obj("P", "lone")
    sim.site("P").barrier.on_reference_arrival(lone)  # must not raise


def test_barrier_clean_expires_at_next_trace():
    sim = make_sim(sites=("P", "Q"))
    b = GraphBuilder(sim)
    target = b.obj("Q", "t")
    holder = b.obj("P", "h", root=True)
    b.link(holder, target)
    suspect_and_trace(sim, only=["Q"])
    q = sim.site("Q")
    q.barrier.on_reference_arrival(b["t"])
    assert q.inrefs.require(b["t"]).is_clean(4)
    q.run_local_trace()
    # Distance estimate is still large, so the inref reverts to suspected.
    assert q.inrefs.require(b["t"]).is_suspected(4)


def test_clean_rule_forces_active_trace_live():
    sim = make_sim(sites=("P", "Q"))
    b = GraphBuilder(sim)
    p, q = b.obj("P", "p"), b.obj("Q", "q")
    b.link(p, q)
    b.link(q, p)
    suspect_and_trace(sim)
    engine = sim.site("P").engine
    engine.start_trace(b["q"])
    # Before any message is delivered, the trace is active at P's outref q
    # and inref p.  Clean inref p via the barrier: the clean rule must force
    # the trace Live even though the cycle "looks" garbage.
    sim.site("P").barrier.on_reference_arrival(b["p"])
    sim.settle()
    assert sim.trace_outcomes[-1][3] is TraceOutcome.LIVE
    assert sim.metrics.count("backtrace.clean_rule_hits") >= 1
    assert not sim.site("Q").inrefs.require(b["q"]).garbage


# -- remote copy & insert protocol (section 6.1.2) ------------------------------------


def test_remote_copy_case4_creates_outref_and_insert():
    """Y had no outref: clean outref born at Y, insert recorded at owner Z,
    pin released at sender X."""
    sim = make_sim(sites=("X", "Y", "Z"))
    b = GraphBuilder(sim)
    z_obj = b.obj("Z", "z")
    x_holder = b.obj("X", "xh")
    b.link(x_holder, z_obj)
    y_dest = b.obj("Y", "yd", root=True)
    sim.site("X").mutator_send_ref("Y", b["z"], y_dest)
    # Pin held while in flight.
    assert sim.site("X").outrefs.require(b["z"]).pin_count == 1
    sim.settle()
    assert sim.site("Y").outrefs.require(b["z"]).is_clean
    assert sim.site("Y").heap.get(y_dest).holds_ref(b["z"])
    assert "Y" in sim.site("Z").inrefs.require(b["z"]).sources
    assert sim.site("X").outrefs.require(b["z"]).pin_count == 0


def test_remote_copy_case3_cleans_suspected_outref():
    sim = make_sim(sites=("X", "Y", "Z"))
    b = GraphBuilder(sim)
    z_obj = b.obj("Z", "z")
    x_holder = b.obj("X", "xh", root=True)
    y_holder = b.obj("Y", "yh", root=True)
    b.link(x_holder, z_obj)
    b.link(y_holder, z_obj)
    # Force Y's outref for z into the suspected state directly (as if Y's
    # last trace had reached it only from a suspected inref).
    sim.site("Y").outrefs.require(b["z"]).traced_clean = False
    assert not sim.site("Y").outrefs.require(b["z"]).is_clean
    y_dest = b.obj("Y", "yd", root=True)
    sim.site("X").mutator_send_ref("Y", b["z"], y_dest)
    sim.settle()
    assert sim.site("Y").outrefs.require(b["z"]).is_clean
    assert sim.site("X").outrefs.require(b["z"]).pin_count == 0


def test_remote_copy_case1_owner_applies_barrier():
    sim = make_sim(sites=("X", "Y"))
    b = GraphBuilder(sim)
    y_obj = b.obj("Y", "y")
    x_holder = b.obj("X", "xh", root=True)
    b.link(x_holder, y_obj)
    suspect_and_trace(sim, only=["Y"])
    assert sim.site("Y").inrefs.require(b["y"]).is_suspected(4)
    y_dest = b.obj("Y", "yd", root=True)
    sim.site("X").mutator_send_ref("Y", b["y"], y_dest)
    sim.settle()
    assert sim.site("Y").inrefs.require(b["y"]).is_clean(4)
    assert sim.site("Y").heap.get(y_dest).holds_ref(b["y"])
    assert sim.site("X").outrefs.require(b["y"]).pin_count == 0


def test_send_own_object_pins_until_insert_returns():
    sim = make_sim(sites=("X", "Y"))
    b = GraphBuilder(sim)
    x_obj = b.obj("X", "xo")
    y_dest = b.obj("Y", "yd", root=True)
    sim.site("X").mutator_send_ref("Y", b["xo"], y_dest)
    # While the copy is in flight the object is pinned at its owner, so the
    # remote safety invariant cannot be violated by an intervening trace.
    assert b["xo"] in sim.site("X").heap.variable_roots
    sim.site("X").run_local_trace()
    assert sim.site("X").heap.contains(b["xo"])
    sim.settle()
    # The insert registered Y and released the pin.
    assert "Y" in sim.site("X").inrefs.require(b["xo"]).sources
    assert b["xo"] not in sim.site("X").heap.variable_roots
    assert sim.site("Y").outrefs.require(b["xo"]).is_clean
    assert sim.site("Y").heap.get(y_dest).holds_ref(b["xo"])


def test_pinned_outref_survives_local_trace_until_insert_done():
    """The insert barrier: X's outref must survive X's local trace while the
    insert is in flight, even if X's heap no longer references z."""
    sim = make_sim(sites=("X", "Y", "Z"))
    b = GraphBuilder(sim)
    z_obj = b.obj("Z", "z")
    x_holder = b.obj("X", "xh", root=True)
    b.link(x_holder, z_obj)
    y_dest = b.obj("Y", "yd", root=True)
    for site_id in sorted(sim.sites):
        sim.sites[site_id].run_local_trace()
    sim.settle()
    sim.site("X").mutator_send_ref("Y", b["z"], y_dest)
    # X drops its own reference immediately.
    sim.site("X").mutator_remove_ref(x_holder, b["z"])
    # X runs a local trace while the copy is still in flight.
    sim.site("X").run_local_trace()
    assert b["z"] in sim.site("X").outrefs
    sim.settle()
    # After the insert lands and the pin is released, X's next trace trims.
    sim.site("X").run_local_trace()
    sim.settle()
    assert b["z"] not in sim.site("X").outrefs
    # Y keeps z alive; the oracle agrees nothing live was lost.
    Oracle(sim).check_safety()
    sources = sim.site("Z").inrefs.require(b["z"]).sources
    assert "Y" in sources


def test_update_messages_remove_sources_and_collect():
    """Figure 1's d/e story: dropping the last reference propagates removal
    through update messages and the target collects."""
    sim = make_sim(sites=("P", "Q"))
    b = GraphBuilder(sim)
    root_q = b.obj("Q", "rootq", root=True)
    d = b.obj("Q", "d")
    e = b.obj("P", "e")
    b.link(root_q, d)
    b.link(d, e)
    for site_id in sorted(sim.sites):
        sim.sites[site_id].run_local_trace()
    sim.settle()
    # Cut d from the root: d is garbage at Q.
    sim.site("Q").mutator_remove_ref(root_q, d)
    sim.run_gc_round()  # Q collects d, drops outref e, sends update to P
    sim.run_gc_round()  # P removes inref e and collects e
    assert not sim.site("Q").heap.contains(d)
    assert not sim.site("P").heap.contains(e)
    assert e not in sim.site("P").inrefs


# -- non-atomic local traces (section 6.2) ----------------------------------------------


def test_nonatomic_trace_defers_mutator_writes():
    gc = GcConfig(local_trace_duration=10.0)
    sim = make_sim(sites=("P",), gc=gc)
    site = sim.site("P")
    root = site.heap.alloc(persistent_root=True)
    other = site.heap.alloc()
    root.add_ref(other.oid)
    site.run_local_trace()
    assert site.is_tracing
    site.mutator_remove_ref(root.oid, other.oid)
    # Write deferred: the heap still holds the reference.
    assert site.heap.get(root.oid).holds_ref(other.oid)
    sim.run_for(20.0)
    assert not site.is_tracing
    assert not site.heap.get(root.oid).holds_ref(other.oid)


def test_nonatomic_trace_replays_barrier_on_new_copy():
    gc = GcConfig(local_trace_duration=10.0)
    sim = make_sim(sites=("P", "Q"), gc=gc)
    b = GraphBuilder(sim)
    target = b.obj("Q", "t")
    inner_remote = b.obj("P", "ir")
    b.link(target, inner_remote)
    holder = b.obj("P", "h")
    b.link(holder, target)
    # Suspect everything, then run atomic traces once to compute outsets.
    for site in sim.sites.values():
        for entry in site.inrefs.entries():
            for source in entry.sources:
                entry.sources[source] = SUSPECT
    q = sim.site("Q")
    q.run_local_trace()
    sim.run_for(20.0)  # commit
    assert q.inrefs.require(b["t"]).is_suspected(4)
    # Start another (non-atomic) trace, apply the barrier mid-window.
    # Nothing changed since the last commit, so the incremental planner
    # would skip; force the full trace this test is about.
    q.run_local_trace(force_full=True)
    assert q.is_tracing
    q.barrier.on_reference_arrival(b["t"])
    assert q.inrefs.require(b["t"]).is_clean(4)  # old copy cleaned
    sim.run_for(20.0)  # commit + replay
    # New copy still records the barrier clean (until the *next* trace).
    assert q.inrefs.require(b["t"]).barrier_clean
    assert q.outrefs.require(b["ir"]).barrier_clean


def test_crash_drops_messages_and_recovery_resumes_gc():
    sim = make_sim(sites=("P", "Q"))
    b = GraphBuilder(sim)
    root = b.obj("P", "root", root=True)
    target = b.obj("Q", "t")
    b.link(root, target)
    sim.site("Q").crash()
    sim.site("P").run_local_trace()
    sim.settle()
    # Q heard nothing.
    assert sim.site("Q").inrefs.require(b["t"]).sources == {"P": 1}
    sim.site("Q").recover()
    sim.site("P").collector._shipped.clear()
    sim.site("P").collector._shipped_epoch = None
    sim.site("P").run_local_trace()
    sim.settle()
    assert sim.site("Q").inrefs.require(b["t"]).sources == {"P": 1}
