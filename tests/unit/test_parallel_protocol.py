"""Unit tests for the parallel engine's building blocks.

Covers the scheduler features the sharded engine relies on (windowed
execution, site tagging, heap compaction), the pure safe-time planner, and
shard assignment -- no worker processes involved.
"""

import math

import pytest

from repro.errors import SchedulerError, SimulationError
from repro.sim.parallel import SafeTimePlanner, assign_shards
from repro.sim.scheduler import Scheduler

INF = float("inf")


# -- heap compaction (lazy-cancel carcass collection) ------------------------


def test_compaction_shrinks_queue_and_preserves_firing_order():
    sched = Scheduler()
    fired = []
    survivors_expected = []
    handles = []
    for index in range(200):
        delay = float(1 + (index * 7) % 50)
        keep = index % 3 == 0
        if keep:
            # (time, scheduling sequence) is the firing order contract.
            survivors_expected.append((delay, index))
        handle = sched.schedule(
            delay, lambda d=delay, i=index: fired.append((d, i))
        )
        if not keep:
            handles.append(handle)

    length_before = sched.queue_length
    for handle in handles:
        handle.cancel()
    # The cancellations crossed the half-carcass threshold mid-stream, so at
    # least one automatic rebuild dropped carcasses without waiting for pops.
    assert sched.queue_length < length_before
    assert sched.pending == len(survivors_expected)
    sched.compact()
    assert sched.queue_length == sched.pending == len(survivors_expected)

    sched.drain()
    assert fired == sorted(survivors_expected)


def test_small_queues_are_not_compacted():
    sched = Scheduler()
    handles = [sched.schedule(float(i + 1), lambda: None) for i in range(10)]
    for handle in handles[:8]:
        handle.cancel()
    # Below the compaction floor the carcasses stay until popped.
    assert sched.queue_length == 10
    assert sched.pending == 2


# -- windowed execution ------------------------------------------------------


def test_run_until_before_is_strictly_exclusive():
    sched = Scheduler()
    fired = []
    for delay in (1.0, 2.0, 3.0):
        sched.schedule(delay, lambda d=delay: fired.append(d))
    assert sched.run_until_before(3.0) == 2
    assert fired == [1.0, 2.0]
    # The clock is not force-advanced past the last fired event.
    assert sched.now == 2.0
    assert sched.next_event_time() == 3.0
    sched.advance_clock(5.0)
    assert sched.now == 5.0
    sched.advance_clock(4.0)  # never moves backwards
    assert sched.now == 5.0


def test_retain_sites_keeps_exactly_the_shard():
    sched = Scheduler()
    fired = []
    for site in ("a", "b", "c"):
        for delay in (1.0, 2.0):
            sched.schedule(
                delay, lambda s=site, d=delay: fired.append((s, d)), site=site
            )
    kept = sched.retain_sites({"a", "c"})
    assert kept == 4 == sched.pending
    sched.drain()
    assert sorted(fired) == [("a", 1.0), ("a", 2.0), ("c", 1.0), ("c", 2.0)]


def test_retain_sites_rejects_untagged_events():
    sched = Scheduler()
    sched.schedule(1.0, lambda: None, label="anonymous-timer")
    with pytest.raises(SchedulerError, match="anonymous-timer"):
        sched.retain_sites({"a"})


def test_retain_sites_ignores_cancelled_untagged_events():
    sched = Scheduler()
    handle = sched.schedule(1.0, lambda: None)
    handle.cancel()
    sched.schedule(2.0, lambda: None, site="a")
    assert sched.retain_sites({"a"}) == 1


# -- safe-time planner -------------------------------------------------------


def test_planner_requires_positive_lookahead():
    with pytest.raises(SimulationError):
        SafeTimePlanner(0.0)


def test_planner_horizon_accepts_any_iterable():
    planner = SafeTimePlanner(1.0)
    # The coordinator passes a generator over its worker handles; the
    # planner must not require a materialized sequence.
    assert planner.horizon(t for t in (5.0, 2.0, 9.0)) == 2.0
    assert planner.horizon(iter([])) == INF
    assert planner.horizon(map(float, range(3, 7))) == 3.0


def test_planner_window_is_horizon_plus_lookahead_clamped():
    planner = SafeTimePlanner(2.0)
    target = math.nextafter(10.0, INF)
    assert planner.window(1.0, target) == 3.0
    assert planner.window(9.5, target) == target  # clamped at the target
    assert planner.window(target, target) is None  # reached
    assert planner.window(INF, target) is None  # all shards idle


def test_planner_window_always_exceeds_horizon():
    # Lookahead so small it underflows against the horizon's magnitude: the
    # window must still make progress (cover the horizon event).
    planner = SafeTimePlanner(1e-9)
    horizon = 1e12
    target = math.nextafter(2e12, INF)
    safe = planner.window(horizon, target)
    assert safe is not None and safe > horizon


def test_planner_rounds_terminate():
    # Simulate shards whose next-event times advance by at least the window:
    # the loop must reach the target in finitely many rounds, each strictly
    # later than the last.
    planner = SafeTimePlanner(1.0)
    target = math.nextafter(100.0, INF)
    next_times = [0.0, 0.5, 3.0]
    rounds = 0
    previous_safe = -INF
    while True:
        safe = planner.window(planner.horizon(next_times), target)
        if safe is None:
            break
        assert safe > previous_safe
        previous_safe = safe
        # Every shard executes its events below `safe`; its next event lands
        # at or beyond the window bound.
        next_times = [max(t, safe) for t in next_times]
        rounds += 1
        assert rounds < 1000
    assert rounds > 0


# -- shard assignment --------------------------------------------------------


def test_contiguous_shards_are_balanced_slices():
    shards = assign_shards(["s5", "s1", "s3", "s2", "s4"], 2, "contiguous")
    assert shards == [["s1", "s2", "s3"], ["s4", "s5"]]


def test_round_robin_shards_deal_cyclically():
    shards = assign_shards(["a", "b", "c", "d", "e"], 2, "round_robin")
    assert shards == [["a", "c", "e"], ["b", "d"]]


def test_more_workers_than_sites_collapses():
    shards = assign_shards(["a", "b"], 8, "contiguous")
    assert shards == [["a"], ["b"]]


# -- window planner selection and quiet-tick gates ---------------------------


def test_window_planner_config_validation():
    from repro.config import SimulationConfig
    from repro.errors import ConfigError

    assert SimulationConfig().window_planner == "demand"
    assert SimulationConfig(window_planner="fixed").window_planner == "fixed"
    with pytest.raises(ConfigError):
        SimulationConfig(window_planner="eager")


def test_site_quiet_gc_ticks_follows_collector_prediction():
    from ..conftest import make_sim

    sim = make_sim(auto_gc=False)
    site = sim.site("P")
    assert site.quiet_gc_ticks() == 0  # no cached trace yet
    site.run_local_trace()
    assert site.quiet_gc_ticks() > 0
    site.heap.alloc()  # cache invalidated; the next tick may send
    assert site.quiet_gc_ticks() == 0


def test_crashed_site_advertises_no_quiet_ticks():
    from ..conftest import make_sim

    sim = make_sim(auto_gc=False)
    site = sim.site("P")
    site.run_local_trace()
    assert site.quiet_gc_ticks() > 0
    site.crash()
    assert site.quiet_gc_ticks() == 0
