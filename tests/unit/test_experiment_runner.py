"""Unit tests for the parameter-sweep experiment runner."""

import pytest

from repro.errors import ConfigError
from repro.harness.experiment import ExperimentRunner


def counting_run(parameters, seed):
    return {"value": parameters["x"] * 10 + parameters["y"], "seed_echo": seed}


def test_grid_covers_product():
    runner = ExperimentRunner(
        "t", counting_run, parameters={"x": [1, 2], "y": [3, 4, 5]}
    )
    assert len(list(runner.grid())) == 6


def test_execute_runs_all_cells_and_repeats():
    runner = ExperimentRunner(
        "t", counting_run, parameters={"x": [1, 2], "y": [3]}, repeats=3
    )
    results = runner.execute()
    assert len(results.cells) == 6
    groups = results.grouped()
    assert len(groups) == 2
    assert all(len(cells) == 3 for cells in groups.values())


def test_seeds_distinct_and_deterministic():
    runner = ExperimentRunner(
        "t", counting_run, parameters={"x": [1], "y": [3, 4]}, repeats=2
    )
    first = [cell.seed for cell in runner.execute().cells]
    second = [cell.seed for cell in runner.execute().cells]
    assert first == second
    assert len(set(first)) == len(first)


def test_mean_aggregation():
    calls = iter([1.0, 3.0])

    def noisy(parameters, seed):
        return {"m": next(calls)}

    runner = ExperimentRunner("t", noisy, parameters={"x": [0]}, repeats=2)
    results = runner.execute()
    assert results.mean((0,), "m") == 2.0


def test_to_table_renders_means():
    runner = ExperimentRunner("sweep", counting_run, parameters={"x": [1], "y": [2]})
    table = runner.execute().to_table("value")
    rendered = table.render()
    assert "sweep" in rendered and "12" in rendered


def test_write_csv(tmp_path):
    runner = ExperimentRunner("t", counting_run, parameters={"x": [1], "y": [2]})
    results = runner.execute()
    path = tmp_path / "out.csv"
    results.write_csv(path)
    content = path.read_text().splitlines()
    assert content[0] == "x,y,seed,value,seed_echo"
    assert content[1].startswith("1,2,")


@pytest.mark.parametrize(
    "kwargs",
    [
        {"parameters": {}},
        {"parameters": {"x": []}},
        {"parameters": {"x": [1]}, "repeats": 0},
    ],
)
def test_validation(kwargs):
    with pytest.raises(ConfigError):
        ExperimentRunner("t", counting_run, **kwargs)


def test_end_to_end_with_simulation():
    """The runner drives a real measurement: rounds to collect by ring size."""
    from repro import Simulation, SimulationConfig
    from repro.analysis import Oracle
    from repro.workloads import build_ring_cycle

    def measure(parameters, seed):
        sim = Simulation(SimulationConfig(seed=seed))
        sites = [f"s{i}" for i in range(parameters["sites"])]
        sim.add_sites(sites, auto_gc=False)
        workload = build_ring_cycle(sim, sites)
        for _ in range(2):
            sim.run_gc_round()
        workload.make_garbage(sim)
        oracle = Oracle(sim)
        for round_number in range(1, 60):
            sim.run_gc_round()
            if not oracle.garbage_set():
                return {"rounds": round_number}
        raise AssertionError("not collected")

    runner = ExperimentRunner(
        "rounds-by-size", measure, parameters={"sites": [2, 4]}, repeats=2
    )
    results = runner.execute()
    # Both sizes collect; note the latency is *not* monotonic in ring size
    # (bigger rings start with larger live-distance estimates, so they cross
    # the back threshold in fewer rounds after the cut).
    assert results.mean((2,), "rounds") > 0
    assert results.mean((4,), "rounds") > 0
