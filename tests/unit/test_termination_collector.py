"""The termination-detection backend: trials, rescue, dirtying, faults.

Behavioural unit tests for :mod:`repro.core.termination` -- the scenarios
the differential matrix cannot isolate: a live-but-suspected cycle that
must be *rescued*, a mutation landing mid-trial that must dirty and abort
it, lost credit that must time the trial out (and nothing else), and
duplicate deliveries that must not double-recover credit.
"""

import pytest

from repro.analysis import Oracle
from repro.api import (
    FaultPlan,
    GcConfig,
    NetworkConfig,
    Simulation,
    SimulationConfig,
)
from repro.workloads.generators import build_ring_cycle
from repro.workloads.topology import GraphBuilder

SITES = ["a", "b", "c"]

GC = dict(
    collector="termination",
    suspicion_threshold=2,
    assumed_cycle_length=2,
    back_threshold_increment=1,
    local_trace_period=50.0,
    local_trace_period_jitter=10.0,
)


def _sim(seed=3, plan=None, **gc_overrides):
    config = SimulationConfig(
        seed=seed,
        gc=GcConfig(**{**GC, **gc_overrides}),
        network=NetworkConfig(pair_rng_streams=True),
    )
    sim = Simulation.create(config, fault_plan=plan)
    sim.add_sites(SITES, auto_gc=True)
    return sim


def _alive(sim, oid):
    return sim.site(oid.site).heap.maybe_get(oid) is not None


def _collector(sim, site_id):
    return sim.site(site_id).cycle_collector


# -- the happy paths ---------------------------------------------------------


def test_garbage_ring_is_collected():
    sim = _sim()
    ring = build_ring_cycle(sim, SITES)
    oracle = Oracle(sim)
    sim.run_for(300.0)
    ring.make_garbage(sim)
    for _ in range(10):
        sim.run_gc_round()
        oracle.check_safety()
        if not any(_alive(sim, member) for member in ring.cycle):
            break
    assert not any(_alive(sim, member) for member in ring.cycle)
    assert sim.metrics.count("termination.trials_started") >= 1
    assert sim.metrics.count("termination.trials_garbage") >= 1
    assert sim.metrics.count("termination.inrefs_flagged") >= len(SITES)


def test_rooted_ring_is_never_suspected():
    sim = _sim()
    ring = build_ring_cycle(sim, SITES)
    sim.run_for(2000.0)
    assert all(_alive(sim, member) for member in ring.cycle)
    # Rooted at distance 2, the ring's distances stabilize below the back
    # threshold: the trigger heuristic never starts a trial for it.
    assert sim.metrics.count("termination.trials_started") == 0


def test_live_chain_rooted_ring_is_rescued():
    # The cycle hangs off a root through a 6-hop cross-site chain: its
    # distances stabilize *above* the back threshold, so trials fire -- and
    # the rescue phase must conclude live every time.
    sim = _sim()
    builder = GraphBuilder(sim)
    members = [builder.obj(site_id) for site_id in SITES]
    builder.link_cycle(members)
    root = builder.obj("a", root=True)
    chain = [builder.obj(SITES[i % 3]) for i in range(6)]
    builder.link_chain([root] + chain + [members[0]])
    oracle = Oracle(sim)
    sim.run_for(1500.0)
    oracle.check_safety()
    assert all(_alive(sim, member) for member in members)
    assert sim.metrics.count("termination.trials_started") >= 1
    assert sim.metrics.count("termination.trials_live") >= 1
    assert sim.metrics.count("termination.trials_garbage") == 0


# -- concurrency safety ------------------------------------------------------


def test_mid_trial_relink_dirties_and_spares_the_ring():
    sim = _sim()
    ring = build_ring_cycle(sim, SITES)
    sim.run_for(300.0)
    ring.make_garbage(sim)

    # Creep forward until some site has an initiated trial in flight.
    in_flight = False
    for _ in range(3000):
        sim.run_for(2.0)
        if any(_collector(sim, s)._active is not None for s in SITES):
            in_flight = True
            break
    assert in_flight, "no trial ever started"

    # Resurrect the ring mid-trial: the epoch guards / arrival hooks must
    # dirty the trial, and the now-live ring must survive it.
    sim.site(ring.anchor.site).mutator_add_ref(ring.anchor, ring.cycle[0])
    oracle = Oracle(sim)
    sim.run_for(3000.0)
    oracle.check_safety()
    assert all(_alive(sim, member) for member in ring.cycle)
    metrics = sim.metrics
    assert (
        metrics.count("termination.trials_aborted")
        + metrics.count("termination.collects_suppressed")
        + metrics.count("termination.trials_live")
    ) >= 1


def test_lost_credit_times_out_then_retries_to_collection():
    plan = FaultPlan.loss(0.5, start=300.0, end=1500.0)
    sim = _sim(plan=plan, termination_trial_timeout=200.0)
    ring = build_ring_cycle(sim, SITES)
    oracle = Oracle(sim)
    sim.run_for(250.0)
    ring.make_garbage(sim)
    sim.run_for(1500.0)  # fault window: trials starve and abort
    oracle.check_safety()
    assert sim.metrics.count("termination.trials_timeout") >= 1
    for _ in range(20):  # healed: the back-off retry must finish the job
        sim.run_gc_round()
        oracle.check_safety()
        if not any(_alive(sim, member) for member in ring.cycle):
            break
    assert not any(_alive(sim, member) for member in ring.cycle)


def test_duplicate_deliveries_do_not_double_recover_credit():
    plan = FaultPlan.duplication(0.4, copies=2, lag=8.0, start=0.0, end=4000.0)
    sim = _sim(plan=plan)
    ring = build_ring_cycle(sim, SITES)
    oracle = Oracle(sim)
    sim.run_for(300.0)
    ring.make_garbage(sim)
    for _ in range(12):
        sim.run_gc_round()
        oracle.check_safety()
        if not any(_alive(sim, member) for member in ring.cycle):
            break
    # Credit is not idempotent, so all six payloads ride the sequenced
    # dedup channel; a replayed ack double-recovering credit would conclude
    # trials early (collecting live members) or corrupt the pool.
    assert not any(_alive(sim, member) for member in ring.cycle)
    dup_suppressed = sum(
        count
        for name, count in sim.metrics.counts_with_prefix(
            "protocol.dup_suppressed."
        ).items()
        if "Trial" in name
    )
    assert dup_suppressed > 0


def test_crash_recovery_wipes_trial_state():
    sim = _sim()
    ring = build_ring_cycle(sim, SITES)
    sim.run_for(300.0)
    ring.make_garbage(sim)
    for _ in range(3000):
        sim.run_for(2.0)
        if any(_collector(sim, s)._active is not None for s in SITES):
            break
    victim = next(s for s in SITES if _collector(sim, s)._active is not None)
    sim.site(victim).crash()
    sim.run_for(50.0)
    sim.site(victim).recover()
    collector = _collector(sim, victim)
    assert collector._active is None
    assert not collector._initiated and not collector._member
    # The crash unrooted nothing live; whatever of the ring survives the
    # lost heap must still be collected safely.
    oracle = Oracle(sim)
    sim.run_for(4000.0)
    oracle.check_safety()


# -- quiescence prediction ---------------------------------------------------


def test_predict_quiet_tracks_suspects_and_state():
    sim = _sim()
    assert all(_collector(sim, s).predict_quiet() for s in SITES)
    ring = build_ring_cycle(sim, SITES)
    sim.run_for(300.0)
    ring.make_garbage(sim)
    # Distances grow past the threshold: some site must stop predicting
    # quiet before its trial fires (else the parallel planner could jump
    # over the whole collection).
    for _ in range(3000):
        sim.run_for(2.0)
        if not all(_collector(sim, s).predict_quiet() for s in SITES):
            break
    assert not all(_collector(sim, s).predict_quiet() for s in SITES)
    sim.run_for(4000.0)
    assert not any(_alive(sim, member) for member in ring.cycle)
    assert all(_collector(sim, s).predict_quiet() for s in SITES)


def test_stats_export_shape():
    sim = _sim()
    stats = _collector(sim, "a").stats()
    assert stats == {
        "trials_started": 0,
        "trials_garbage": 0,
        "trials_live": 0,
        "trials_aborted": 0,
        "active_member_trials": 0,
    }
