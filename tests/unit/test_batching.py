"""Unit and integration tests for message deferral/piggybacking (section 4.6)."""

from dataclasses import dataclass

import pytest

from repro import GcConfig
from repro.analysis import Oracle
from repro.errors import ConfigError
from repro.metrics import MetricsRecorder
from repro.net.batching import Bundle, DeferringSender
from repro.net.message import Payload
from repro.sim.scheduler import Scheduler
from repro.workloads import build_ring_cycle

from ..conftest import collect_until_clean, make_sim


@dataclass(frozen=True)
class Small(Payload):
    n: int = 0


@dataclass(frozen=True)
class Big(Payload):
    n: int = 0


def make_sender(delay=2.0, max_queue=64):
    sched = Scheduler()
    sent = []
    sender = DeferringSender(
        "P",
        sched,
        raw_send=lambda dst, payload: sent.append((dst, payload)),
        deferrable=(Small,),
        delay=delay,
        max_queue=max_queue,
        metrics=MetricsRecorder(),
    )
    return sched, sender, sent


def test_small_messages_deferred_until_timer():
    sched, sender, sent = make_sender(delay=5.0)
    sender.send("Q", Small(1))
    sender.send("Q", Small(2))
    assert sent == []
    sched.run_for(5.0)
    assert len(sent) == 1
    dst, payload = sent[0]
    assert isinstance(payload, Bundle)
    assert [p.n for p in payload.payloads] == [1, 2]


def test_single_queued_payload_flushes_unbundled():
    sched, sender, sent = make_sender(delay=1.0)
    sender.send("Q", Small(7))
    sched.run_for(1.0)
    assert len(sent) == 1
    assert isinstance(sent[0][1], Small)


def test_big_message_piggybacks_pending():
    sched, sender, sent = make_sender(delay=100.0)
    sender.send("Q", Small(1))
    sender.send("Q", Small(2))
    sender.send("Q", Big(3))
    assert len(sent) == 1
    bundle = sent[0][1]
    assert isinstance(bundle, Bundle)
    # FIFO preserved: queued payloads first, the trigger last.
    assert [p.n for p in bundle.payloads] == [1, 2, 3]
    # Timer cancelled: nothing further.
    sched.run_for(200.0)
    assert len(sent) == 1


def test_queues_are_per_destination():
    sched, sender, sent = make_sender(delay=100.0)
    sender.send("Q", Small(1))
    sender.send("R", Small(2))
    sender.send("Q", Big(3))
    assert len(sent) == 1 and sent[0][0] == "Q"
    assert sender.queued == 1  # R's payload still waiting
    sched.run_for(100.0)
    assert len(sent) == 2 and sent[1][0] == "R"


def test_overflow_flushes_immediately():
    sched, sender, sent = make_sender(delay=100.0, max_queue=3)
    for n in range(3):
        sender.send("Q", Small(n))
    assert len(sent) == 1
    assert len(sent[0][1].payloads) == 3


def test_flush_all():
    sched, sender, sent = make_sender(delay=100.0)
    sender.send("Q", Small(1))
    sender.send("R", Small(2))
    sender.flush_all()
    assert {dst for dst, _ in sent} == {"Q", "R"}
    assert sender.queued == 0


def test_bundle_size_and_refs_aggregate():
    from repro.ids import ObjectId
    from repro.mutator.ops import MutatorHop

    hop = MutatorHop(mutator="m", target=ObjectId("P", 1))
    bundle = Bundle(payloads=(Small(1), hop))
    assert bundle.size_units() == 2
    assert bundle.carried_refs() == (ObjectId("P", 1),)


def test_defer_delay_validation():
    with pytest.raises(ConfigError):
        GcConfig(defer_messages=True, defer_delay=0.0)
    with pytest.raises(ConfigError):
        GcConfig(defer_messages=True, defer_delay=200.0, backtrace_timeout=500.0)


def _parallel_cycles_run(defer, n_cycles=8):
    """Many independent 2-site cycles: their traces' calls and replies
    cluster per destination, which is where bundling pays off."""
    gc = GcConfig(
        defer_messages=defer,
        defer_delay=2.0,
        max_traces_per_trigger_check=n_cycles,
    )
    sim = make_sim(sites=("a", "b"), gc=gc)
    workloads = [build_ring_cycle(sim, ["a", "b"]) for _ in range(n_cycles)]
    oracle = Oracle(sim)
    for _ in range(2):
        sim.run_gc_round()
    for workload in workloads:
        workload.make_garbage(sim)
    rounds = collect_until_clean(sim, oracle, max_rounds=80)
    return sim, rounds


def test_system_with_deferral_still_collects_cycles():
    sim, rounds = _parallel_cycles_run(defer=True)
    assert sim.metrics.count("deferral.queued") > 0
    assert sim.metrics.count("messages.Bundle") > 0


def test_deferral_reduces_physical_messages():
    plain_sim, plain_rounds = _parallel_cycles_run(defer=False)
    deferred_sim, deferred_rounds = _parallel_cycles_run(defer=True)
    assert deferred_sim.metrics.count("messages.total") < plain_sim.metrics.count(
        "messages.total"
    )
    # Latency cost is bounded (deferral delays are tiny vs round length).
    assert deferred_rounds <= plain_rounds + 2
