"""Unit tests for identifiers and configuration validation."""

import dataclasses

import pytest

from repro.config import GcConfig, NetworkConfig, SimulationConfig
from repro.errors import ConfigError
from repro.ids import FrameId, ObjectId, TraceId, coerce_object_id, parse_object_id


def test_object_id_round_trip():
    oid = ObjectId("siteX", 17)
    assert parse_object_id(str(oid)) == oid


def test_object_id_is_local_to():
    assert ObjectId("P", 0).is_local_to("P")
    assert not ObjectId("P", 0).is_local_to("Q")


def test_parse_rejects_garbage():
    with pytest.raises(ValueError):
        parse_object_id("nodot")


def test_coerce_accepts_both_forms():
    oid = ObjectId("P", 1)
    assert coerce_object_id(oid) is oid
    assert coerce_object_id("P.1") == oid


def test_ids_sort_deterministically():
    ids = [ObjectId("Q", 1), ObjectId("P", 2), ObjectId("P", 1)]
    assert sorted(ids) == [ObjectId("P", 1), ObjectId("P", 2), ObjectId("Q", 1)]


def test_trace_and_frame_ids_hashable_and_distinct():
    assert TraceId("P", 0) != TraceId("Q", 0)
    assert FrameId("P", 0) != FrameId("P", 1)
    assert len({TraceId("P", 0), TraceId("P", 0)}) == 1


def test_gc_config_defaults_valid():
    config = GcConfig()
    assert config.initial_back_threshold == (
        config.suspicion_threshold + config.assumed_cycle_length
    )


@pytest.mark.parametrize(
    "field,value",
    [
        ("suspicion_threshold", 0),
        ("assumed_cycle_length", 0),
        ("back_threshold_increment", 0),
        ("local_trace_period", 0.0),
        ("local_trace_period_jitter", -1.0),
        ("local_trace_duration", -1.0),
        ("backtrace_timeout", 0.0),
        ("backinfo_algorithm", "magic"),
    ],
)
def test_gc_config_rejects_bad_values(field, value):
    with pytest.raises(ConfigError):
        dataclasses.replace(GcConfig(), **{field: value})


def test_gc_config_duration_must_fit_in_period():
    with pytest.raises(ConfigError):
        GcConfig(local_trace_period=10.0, local_trace_duration=10.0)


@pytest.mark.parametrize(
    "kwargs",
    [
        {"min_latency": -1.0},
        {"min_latency": 5.0, "max_latency": 1.0},
        {"drop_probability": 1.5},
    ],
)
def test_network_config_rejects_bad_values(kwargs):
    with pytest.raises(ConfigError):
        NetworkConfig(**kwargs)


def test_simulation_config_rejects_non_int_seed():
    with pytest.raises(ConfigError):
        SimulationConfig(seed="zero")


def test_configs_are_frozen():
    with pytest.raises(dataclasses.FrozenInstanceError):
        GcConfig().suspicion_threshold = 9


def test_direct_rings_require_packed_wire():
    # Rings carry packed records by construction; an explicit opt-in with
    # the packer disabled is a contradiction, not a silent downgrade.
    with pytest.raises(ConfigError, match="packed_wire"):
        SimulationConfig(direct_rings=True, packed_wire=False)


def test_direct_rings_default_follows_packed_wire():
    assert SimulationConfig().effective_direct_rings is True
    assert SimulationConfig(packed_wire=False).effective_direct_rings is False
    assert (
        SimulationConfig(direct_rings=False).effective_direct_rings is False
    )
    assert SimulationConfig(direct_rings=True).effective_direct_rings is True


def test_ring_bytes_per_pair_must_hold_a_frame():
    with pytest.raises(ConfigError, match="ring_bytes_per_pair"):
        SimulationConfig(ring_bytes_per_pair=512)
