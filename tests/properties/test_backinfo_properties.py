"""Property-based tests for back-information computation.

The central invariant of section 5: both algorithms compute *exact*
reachability from suspected inrefs to suspected outrefs.  We generate random
local heaps with remote references and check the algorithms against each
other and against a brute-force reachability oracle.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.backinfo import (
    TraceEnvironment,
    compute_outsets_bottom_up,
    compute_outsets_independent,
    invert_outsets,
)
from repro.ids import ObjectId
from repro.store.heap import Heap


@st.composite
def local_graphs(draw):
    """A random local heap with remote refs, clean marks, and inref roots."""
    n_objects = draw(st.integers(min_value=1, max_value=24))
    n_remote = draw(st.integers(min_value=0, max_value=6))
    heap = Heap("Q")
    objects = [heap.alloc() for _ in range(n_objects)]
    remotes = [ObjectId("P", i) for i in range(n_remote)]

    n_edges = draw(st.integers(min_value=0, max_value=3 * n_objects))
    for _ in range(n_edges):
        src = draw(st.integers(0, n_objects - 1))
        if remotes and draw(st.booleans()) and draw(st.booleans()):
            objects[src].add_ref(draw(st.sampled_from(remotes)))
        else:
            dst = draw(st.integers(0, n_objects - 1))
            objects[src].add_ref(objects[dst].oid)

    clean_objects = {
        obj.oid for obj in objects if draw(st.integers(0, 4)) == 0
    }
    clean_remotes = {r for r in remotes if draw(st.integers(0, 3)) == 0}
    roots = [
        obj.oid
        for obj in objects
        if obj.oid not in clean_objects and draw(st.integers(0, 2)) == 0
    ]
    return heap, clean_objects, clean_remotes, roots


def brute_force_outsets(heap, clean_objects, clean_remotes, roots):
    """Reference implementation: per-root BFS over suspected objects."""
    outsets = {}
    for root in roots:
        reach: Set[ObjectId] = set()
        found: Set[ObjectId] = set()
        if root in clean_objects or not heap.contains(root):
            outsets[root] = frozenset()
            continue
        stack = [root]
        while stack:
            oid = stack.pop()
            if oid in reach:
                continue
            reach.add(oid)
            for ref in heap.get(oid).iter_refs():
                if ref.site != "Q":
                    if ref not in clean_remotes:
                        found.add(ref)
                elif (
                    ref not in clean_objects
                    and heap.contains(ref)
                    and ref not in reach
                ):
                    stack.append(ref)
        outsets[root] = frozenset(found)
    return outsets


def make_env(heap, clean_objects, clean_remotes):
    return TraceEnvironment(
        heap=heap,
        clean_objects=set(clean_objects),
        is_clean_outref=lambda ref: ref in clean_remotes,
    )


@given(local_graphs())
@settings(max_examples=200, deadline=None)
def test_bottom_up_matches_brute_force(data):
    heap, clean_objects, clean_remotes, roots = data
    expected = brute_force_outsets(heap, clean_objects, clean_remotes, roots)
    result = compute_outsets_bottom_up(make_env(heap, clean_objects, clean_remotes), roots)
    assert result.outsets == expected


@given(local_graphs())
@settings(max_examples=200, deadline=None)
def test_independent_matches_brute_force(data):
    heap, clean_objects, clean_remotes, roots = data
    expected = brute_force_outsets(heap, clean_objects, clean_remotes, roots)
    result = compute_outsets_independent(
        make_env(heap, clean_objects, clean_remotes), roots
    )
    assert result.outsets == expected


@given(local_graphs())
@settings(max_examples=200, deadline=None)
def test_algorithms_agree(data):
    heap, clean_objects, clean_remotes, roots = data
    bottom_up = compute_outsets_bottom_up(
        make_env(heap, clean_objects, clean_remotes), roots
    )
    independent = compute_outsets_independent(
        make_env(heap, clean_objects, clean_remotes), roots
    )
    assert bottom_up.outsets == independent.outsets


@given(local_graphs())
@settings(max_examples=100, deadline=None)
def test_bottom_up_visits_each_object_at_most_once(data):
    heap, clean_objects, clean_remotes, roots = data
    result = compute_outsets_bottom_up(
        make_env(heap, clean_objects, clean_remotes), roots
    )
    assert result.objects_scanned == len(result.visited_objects)
    assert result.objects_scanned <= len(heap)


@given(local_graphs())
@settings(max_examples=100, deadline=None)
def test_insets_are_exact_inverse(data):
    heap, clean_objects, clean_remotes, roots = data
    result = compute_outsets_bottom_up(
        make_env(heap, clean_objects, clean_remotes), roots
    )
    insets = invert_outsets(result.outsets)
    for outref, inset in insets.items():
        for inref in inset:
            assert outref in result.outsets[inref]
    for inref, outset in result.outsets.items():
        for outref in outset:
            assert inref in insets[outref]
