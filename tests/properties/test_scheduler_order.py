"""Properties of the tuple-keyed scheduler heap (:class:`Scheduler`).

The scheduler's contract is deterministic total order: events fire in
``(time, seq)`` order whatever mix of ``schedule`` / ``schedule_at`` /
``cancel`` / ``compact`` / bounded runs produced the queue.  The heap
layout (tuple entries, lazy cancellation, compaction rebuilds, head
pruning) is an implementation detail that must never show through.  These
tests drive randomized interleavings against a trivially correct reference
model -- a flat list of (time, seq) records fired by sorting -- plus
directed checks for the boundary semantics (`run_until` is inclusive,
``run_until_before`` exclusive) and for compaction triggered *inside* a
running callback (which rebuilds the queue list mid-loop).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.scheduler import Scheduler


class ModelScheduler:
    """Reference model: a plain list, fired by sorting on (time, seq)."""

    def __init__(self):
        self.now = 0.0
        self.seq = 0
        self.events = []  # [time, seq, label, alive]
        self.fired = []

    def schedule_at(self, time, label):
        self.events.append([time, self.seq, label, True])
        self.seq += 1

    def live_handles(self):
        return [e for e in self.events if e[3]]

    def cancel(self, event):
        event[3] = False

    def _fire_below(self, limit, inclusive):
        while True:
            live = [
                e
                for e in self.events
                if e[3] and (e[0] <= limit if inclusive else e[0] < limit)
            ]
            if not live:
                return
            event = min(live, key=lambda e: (e[0], e[1]))
            event[3] = False
            self.now = event[0]
            self.fired.append((event[0], event[2]))

    def run_until(self, time):
        self._fire_below(time, inclusive=True)
        self.now = max(self.now, time)

    def run_until_before(self, bound):
        self._fire_below(bound, inclusive=False)

    def drain(self):
        self._fire_below(float("inf"), inclusive=True)


OPS = st.lists(
    st.one_of(
        st.tuples(st.just("schedule"), st.integers(0, 50)),
        st.tuples(st.just("cancel"), st.integers(0, 10_000)),
        st.tuples(st.just("compact"), st.just(0)),
        st.tuples(st.just("run_until"), st.integers(0, 60)),
        st.tuples(st.just("run_until_before"), st.integers(0, 60)),
    ),
    min_size=1,
    max_size=120,
)


@settings(max_examples=200, deadline=None)
@given(ops=OPS)
def test_interleaved_schedule_cancel_run_matches_reference_model(ops):
    """Any interleaving of the public operations fires the same (time, label)
    sequence as the sort-based reference model, with matching clocks and
    pending counts throughout."""
    sched = Scheduler()
    model = ModelScheduler()
    fired = []
    handles = []  # (EventHandle, model event) pairs, in schedule order
    label_counter = [0]

    def make_cb(time, label):
        return lambda: fired.append((time, label))

    for op, value in ops:
        if op == "schedule":
            time = sched.now + float(value)
            label = f"e{label_counter[0]}"
            label_counter[0] += 1
            handles.append(
                (
                    sched.schedule_at(time, make_cb(time, label), label=label),
                    model.events[len(model.events) :],
                )
            )
            model.schedule_at(time, label)
            handles[-1] = (handles[-1][0], model.events[-1])
        elif op == "cancel":
            live = [(h, e) for h, e in handles if not h.cancelled and e[3]]
            if live:
                handle, event = live[value % len(live)]
                handle.cancel()
                model.cancel(event)
        elif op == "compact":
            sched.compact()
        elif op == "run_until":
            sched.run_until(float(value))
            model.run_until(float(value))
        else:
            sched.run_until_before(float(value))
            model.run_until_before(float(value))
        assert sched.now == model.now
        assert sched.pending == len(model.live_handles())
        assert fired == model.fired
        assert sched.peek_time() == min(
            (e[0] for e in model.live_handles()), default=float("inf")
        )

    sched.drain()
    model.drain()
    assert fired == model.fired
    assert sched.pending == 0


@settings(max_examples=100, deadline=None)
@given(
    count=st.integers(2, 30),
    times=st.lists(st.sampled_from([1.0, 2.0, 3.0]), min_size=2, max_size=30),
)
def test_equal_timestamps_fire_in_schedule_order(count, times):
    """FIFO within a timestamp: events at the same time fire in the order
    they were scheduled, however they interleave with other timestamps."""
    sched = Scheduler()
    fired = []
    for index, time in enumerate(times):
        sched.schedule_at(time, lambda i=index: fired.append(i))
    sched.drain()
    by_time = sorted(range(len(times)), key=lambda i: (times[i], i))
    assert fired == by_time


def test_run_until_is_inclusive_and_run_until_before_is_exclusive():
    sched = Scheduler()
    fired = []
    sched.schedule_at(5.0, lambda: fired.append("at-bound"))
    sched.schedule_at(4.0, lambda: fired.append("below"))
    assert sched.run_until_before(5.0) == 1
    assert fired == ["below"]
    assert sched.now == 4.0  # run_until_before never force-advances the clock
    assert sched.run_until(5.0) == 1
    assert fired == ["below", "at-bound"]
    assert sched.now == 5.0


def test_bounded_runs_prune_cancelled_heads_past_the_bound():
    """A storm of timeouts cancelled *beyond* the window bound is discarded
    by the next bounded run instead of lingering at the queue head."""
    sched = Scheduler()
    storm = [sched.schedule_at(50.0, lambda: None) for _ in range(10)]
    sched.schedule_at(100.0, lambda: None)
    for handle in storm:
        handle.cancel()
    assert sched.queue_length == 11
    assert sched.run_until(10.0) == 0  # fires nothing: bound is below everything
    assert sched.queue_length == 1  # ...but the cancelled heads are gone
    assert sched.pending == 1


def test_callback_cancellation_triggers_compaction_mid_run():
    """A callback that cancels most of the queue trips the compaction
    threshold *while run_until is iterating*; the rebuilt queue must keep
    firing the survivors in order."""
    sched = Scheduler()
    fired = []
    victims = []

    def massacre():
        fired.append("massacre")
        for handle in victims:
            handle.cancel()

    sched.schedule_at(1.0, massacre)
    # 200 victims at t=2 (cancelled mid-run) interleaved with survivors.
    survivors = []
    for index in range(200):
        victims.append(sched.schedule_at(2.0, lambda: fired.append("victim")))
        if index % 10 == 0:
            time = 3.0 + index
            survivors.append(time)
            sched.schedule_at(time, lambda t=time: fired.append(t))
    before = sched.queue_length
    assert sched.run_until(1000.0) == 1 + len(survivors)
    assert fired == ["massacre"] + survivors
    assert sched.queue_length == 0 < before
    assert sched.pending == 0


@settings(max_examples=60, deadline=None)
@given(
    bound=st.integers(1, 40),
    times=st.lists(st.integers(0, 50), min_size=1, max_size=60),
)
def test_run_until_before_boundary_matches_model(bound, times):
    """Exactly the events strictly below the bound fire, in (time, seq)
    order; events at the bound survive untouched."""
    sched = Scheduler()
    fired = []
    for index, time in enumerate(times):
        sched.schedule_at(float(time), lambda i=index: fired.append(i))
    count = sched.run_until_before(float(bound))
    expected = sorted(
        (i for i, t in enumerate(times) if t < bound),
        key=lambda i: (times[i], i),
    )
    assert fired == expected
    assert count == len(expected)
    assert sched.pending == len(times) - len(expected)


def test_max_events_stops_mid_timestamp_without_advancing_clock():
    sched = Scheduler()
    fired = []
    for index in range(5):
        sched.schedule_at(1.0, lambda i=index: fired.append(i))
    assert sched.run_until(9.0, max_events=3) == 3
    assert fired == [0, 1, 2]
    assert sched.now == 1.0  # capped runs do not jump the clock to the bound
    assert sched.run_until(9.0) == 2
    assert sched.now == 9.0
