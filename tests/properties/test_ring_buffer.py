"""Properties of the position-free SPSC byte ring (:class:`SpscRing`).

The ring holds no cursors: the writer owns its write position, the reader
is told which ranges are certified, and the free-space check uses whatever
consumption point the coordinator has confirmed.  That makes the class a
pure function of its call sequence, so it is property-testable over a plain
``bytearray`` -- no shared memory, no processes:

- every accepted write round-trips byte-exact through ``read``, in order,
  across arbitrary wraparound;
- a write is accepted iff it fits the free space implied by the confirmed
  consumption point, and never partially;
- a certified range that does not hold well-formed frames (truncated
  length prefix, oversized declared length) raises -- with
  coordinator-certified cursors that can only mean corruption.
"""

import struct

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SimulationError
from repro.store.shm import RING_FRAME_BYTES, SpscRing

RECORDS = st.lists(st.binary(min_size=0, max_size=40), min_size=1, max_size=60)


@settings(max_examples=120, deadline=None)
@given(records=RECORDS, capacity=st.integers(min_value=16, max_value=128),
       batch=st.integers(min_value=1, max_value=7))
def test_accepted_writes_round_trip_in_order_across_wraparound(
    records, capacity, batch
):
    """Write/consume in batches so positions lap the buffer many times; every
    accepted record comes back byte-exact, in write order."""
    ring = SpscRing(bytearray(capacity))
    write_pos = 0
    consumed = 0
    pending_since = 0
    for index, record in enumerate(records):
        new_pos = ring.try_write(record, write_pos, consumed)
        fits = RING_FRAME_BYTES + len(record) <= ring.free_space(
            write_pos, consumed
        )
        assert (new_pos is not None) == fits
        if new_pos is None:
            # Drain everything certified so far, then the write must succeed
            # unless the record alone exceeds the whole ring.
            got = ring.read(consumed, write_pos)
            assert got == records[pending_since:index][: len(got)]
            consumed = write_pos
            pending_since = index
            new_pos = ring.try_write(record, write_pos, consumed)
            if RING_FRAME_BYTES + len(record) > capacity:
                assert new_pos is None
                pending_since = index + 1
                continue
        write_pos = new_pos
        if (index + 1) % batch == 0:
            got = ring.read(consumed, write_pos)
            assert got == records[pending_since : index + 1]
            consumed = write_pos
            pending_since = index + 1
    assert ring.read(consumed, write_pos) == records[pending_since:]


@settings(max_examples=80, deadline=None)
@given(capacity=st.integers(min_value=16, max_value=96),
       record=st.binary(min_size=1, max_size=24))
def test_full_ring_declines_then_accepts_after_consume(capacity, record):
    """Writes are declined exactly when the ring is full, accepted again the
    moment the coordinator certifies consumption -- never overwritten."""
    ring = SpscRing(bytearray(capacity))
    framed = RING_FRAME_BYTES + len(record)
    write_pos = 0
    accepted = 0
    while True:
        new_pos = ring.try_write(record, write_pos, 0)
        if new_pos is None:
            break
        write_pos = new_pos
        accepted += 1
    assert accepted == capacity // framed
    # Still declined with nothing consumed; accepted after one record frees.
    assert ring.try_write(record, write_pos, 0) is None
    after = ring.try_write(record, write_pos, framed)
    assert after == write_pos + framed
    # The first record was already consumed, the rest plus the new one are
    # intact -- the overflow decline never clobbered certified bytes.
    assert ring.read(framed, after) == [record] * accepted


@settings(max_examples=80, deadline=None)
@given(capacity=st.integers(min_value=16, max_value=96),
       trailing=st.integers(min_value=1, max_value=RING_FRAME_BYTES - 1))
def test_truncated_length_prefix_is_rejected(capacity, trailing):
    """A certified limit that cuts a length prefix short is corruption."""
    ring = SpscRing(bytearray(capacity))
    with pytest.raises(SimulationError, match="torn ring frame"):
        ring.read(0, trailing)


@settings(max_examples=80, deadline=None)
@given(capacity=st.integers(min_value=16, max_value=96),
       declared=st.integers(min_value=1, max_value=2**31))
def test_oversized_declared_length_is_rejected(capacity, declared):
    """A frame whose declared size runs past the certified limit (or could
    never fit the ring at all) is corruption, not a retry condition."""
    ring = SpscRing(bytearray(capacity))
    prefix = struct.pack("<I", declared)
    ring.buf[: len(prefix)] = prefix
    with pytest.raises(SimulationError, match="torn ring frame"):
        ring.read(0, RING_FRAME_BYTES)


def test_capacity_too_small_to_frame_anything_is_rejected():
    with pytest.raises(SimulationError, match="cannot frame"):
        SpscRing(bytearray(RING_FRAME_BYTES))
