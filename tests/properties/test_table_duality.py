"""Post-trace table invariants on randomized worlds.

After any local trace commits, the two representations of back information
must be exact duals (the transfer barrier cleans via outsets, back traces
walk via insets -- a mismatch would break §6.1's safety proof):

- outref o's inset contains inref i  <=>  inref i's outset contains o;
- every inset member is a *suspected* inref (the auxiliary invariant:
  "for any suspected outref o, o.inset does not include any clean inref");
- every remote reference in the heap has an outref entry, and every
  non-pinned outref is locally reachable (no phantom table entries).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import GcConfig
from repro.workloads import GraphBuilder

from tests.conftest import make_sim


@st.composite
def random_worlds(draw):
    n_per_site = draw(st.integers(2, 6))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(0, 3 * n_per_site - 1),
                st.integers(0, 3 * n_per_site - 1),
            ),
            max_size=5 * n_per_site,
        )
    )
    rooted = draw(st.sets(st.integers(0, 3 * n_per_site - 1), max_size=4))
    distances = draw(st.lists(st.integers(1, 12), min_size=1, max_size=8))
    return n_per_site, edges, rooted, distances


@given(random_worlds())
@settings(max_examples=80, deadline=None)
def test_inset_outset_duality_after_trace(world):
    n_per_site, edges, rooted, distances = world
    sites = ["s0", "s1", "s2"]
    sim = make_sim(sites=sites, gc=GcConfig(suspicion_threshold=3))
    builder = GraphBuilder(sim)
    objects = [builder.obj(sites[i % 3]) for i in range(3 * n_per_site)]
    for index in rooted:
        sim.site(objects[index].site).heap.make_persistent_root(objects[index])
    for src, dst in edges:
        builder.link(objects[src], objects[dst])
    # Scatter arbitrary distance estimates over the inrefs.
    cursor = 0
    for site in sim.sites.values():
        for entry in site.inrefs.entries():
            for source in entry.sources:
                entry.sources[source] = distances[cursor % len(distances)]
                cursor += 1
    for site_id in sites:
        sim.sites[site_id].run_local_trace()

    for site in sim.sites.values():
        threshold = site.inrefs.suspicion_threshold
        insets = {
            entry.target: entry.inset for entry in site.outrefs.entries()
        }
        outsets = {
            entry.target: entry.outset for entry in site.inrefs.entries()
        }
        # Duality.
        for outref_target, inset in insets.items():
            for inref_target in inset:
                assert outref_target in outsets.get(inref_target, frozenset()), (
                    f"{site.site_id}: inset of {outref_target} names "
                    f"{inref_target} but not vice versa"
                )
        for inref_target, outset in outsets.items():
            for outref_target in outset:
                assert inref_target in insets.get(outref_target, frozenset())
        # Auxiliary invariant: no clean inref appears in any inset.
        for inset in insets.values():
            for inref_target in inset:
                entry = site.inrefs.get(inref_target)
                assert entry is not None
                assert entry.is_suspected(threshold)
        # Heap/table consistency: remote heap refs all have outref entries.
        for obj in site.heap.objects():
            for ref in obj.remote_refs():
                assert ref in site.outrefs, (
                    f"{site.site_id}: heap holds {ref} with no outref entry"
                )
