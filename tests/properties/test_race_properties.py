"""Property-based exploration of the Figure 6 race (section 6.4).

Hypothesis drives the race topology through random seeds, latency models,
trace-start offsets, and FIFO/non-FIFO delivery.  The invariant is the
paper's safety theorem: no interleaving of {back-trace branches, mutator
traversal, path deletion, local traces} may collect the live object, and
the system must still converge to zero garbage afterwards.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import GcConfig, NetworkConfig
from repro.analysis import Oracle
from repro.mutator import Mutator
from repro.net.latency import ConstantLatency, ExponentialLatency, UniformLatency

from tests.conftest import make_sim
from tests.integration.test_barrier_safety import (
    build_race_topology,
    prepare_stale_suspicion,
)

LATENCIES = [
    lambda: ConstantLatency(2.0),
    lambda: UniformLatency(1.0, 5.0),
    lambda: ExponentialLatency(base=0.5, mean=3.0),
]


@st.composite
def race_setups(draw):
    seed = draw(st.integers(0, 10_000))
    latency_index = draw(st.integers(0, len(LATENCIES) - 1))
    fifo = draw(st.booleans())
    trace_delay = draw(st.floats(min_value=0.0, max_value=8.0))
    delete_early = draw(st.booleans())
    return seed, latency_index, fifo, trace_delay, delete_early


@given(race_setups())
@settings(max_examples=40, deadline=None)
def test_race_interleavings_never_lose_live_objects(setup):
    seed, latency_index, fifo, trace_delay, delete_early = setup
    gc = GcConfig()
    # Rebuild the canonical race topology under the drawn transport.
    import tests.integration.test_barrier_safety as race_mod

    sim, b = race_mod.build_race_topology(gc, seed=seed)
    sim.network._latency = LATENCIES[latency_index]()
    sim.network._config = NetworkConfig(fifo_per_pair=fifo)
    prepare_stale_suspicion(sim, b)
    oracle = Oracle(sim)

    mutator = Mutator(sim, "m", b["rootR"])
    mutator.traverse(b["e"], check_held=True)
    if delete_early:
        # Deletion races ahead of everything else.
        sim.site("R").mutator_remove_ref(b["e"], b["f"])
    sim.run_for(trace_delay)
    sim.site("Q").engine.start_trace(b["g"])
    if not delete_early:
        mutator.traverse(b["f"])
        sim.run_for(2.0)
        sim.settle(quiet_time=20.0)
        if not mutator.in_transit and mutator.position == b["f"]:
            mutator.traverse(b["z"])
            mutator.set_variable("zref", b["z"])
            mutator._arrived(b["a"])
            mutator.traverse(b["b"])
            sim.settle(quiet_time=20.0)
            if mutator.position == b["b"]:
                mutator.traverse(b["y"])
                mutator.store_ref(b["z"], holder=b["y"])
            mutator.clear_variable("zref")
        sim.site("R").mutator_remove_ref(b["e"], b["f"])
    # Safety at every subsequent round; convergence to zero garbage.
    for _ in range(50):
        sim.run_gc_round()
        oracle.check_safety()
        if not oracle.garbage_set():
            break
    assert not oracle.garbage_set()
