"""Property: no window ever delivers a message into another shard's past.

The conservative-lookahead safety argument says every message routed out of
a safe-time window delivers at or after the window's dispatched bound.  The
coordinator enforces exactly that invariant at runtime on every absorbed
message (:meth:`ParallelSimulation._absorb`), so these trials drive the
demand planner across randomized latency configurations -- homogeneous
uniform bands and heterogeneous zoned topologies, with the global
``min_latency`` floor set to the model's true minimum -- and a planner bug
(an over-eager EOT, a stale pipelined bound) surfaces as a
:class:`SimulationError` rather than as silent corruption.  Each trial also
compares the final snapshot against the sequential twin, which would catch
any violation the runtime check somehow missed.
"""

import json
import random

import pytest

from repro import GcConfig, NetworkConfig, Simulation, SimulationConfig
from repro.errors import SimulationError
from repro.net.latency import UniformLatency, ZonedLatency
from repro.net.wire import pack_reply_meta
from repro.workloads import ChurnConfig, SiteChurn

SITES = [f"s{i}" for i in range(8)]


def _random_latency(rng):
    """A random latency model plus its true global floor."""
    if rng.random() < 0.5:
        low = rng.uniform(0.5, 6.0)
        return UniformLatency(low, low + rng.uniform(0.1, 10.0)), low
    intra_low = rng.uniform(0.5, 3.0)
    cross_low = rng.uniform(5.0, 15.0)
    zones = {site: rng.randrange(3) for site in SITES}
    model = ZonedLatency(
        zones,
        intra=(intra_low, intra_low + rng.uniform(0.1, 2.0)),
        cross=(cross_low, cross_low + rng.uniform(0.1, 10.0)),
    )
    return model, min(intra_low, cross_low)


def _run(workers, model, floor, seed):
    config = SimulationConfig(
        seed=seed,
        network=NetworkConfig(
            min_latency=floor, max_latency=floor * 20.0, pair_rng_streams=True
        ),
        gc=GcConfig(local_trace_period=60.0, local_trace_period_jitter=15.0),
        parallel_workers=workers,
    )
    sim = Simulation.create(config, latency_model=model)
    sim.add_sites(SITES, auto_gc=True)
    churn = SiteChurn(sim, SITES, ChurnConfig(mean_interval=5.0))
    churn.start(until=150.0)
    sim.run_for(400.0)
    sim.settle(quiet_time=20.0, max_rounds=2000)
    if getattr(sim, "parallel_active", False):
        snap = json.dumps(sim.snapshot(), sort_keys=True)
        sim.close()
    else:
        from repro.analysis.export import graph_snapshot

        snap = json.dumps(graph_snapshot(sim), sort_keys=True)
    return snap


@pytest.mark.parametrize("trial", range(6))
def test_windows_never_deliver_into_the_past_under_random_latency(trial):
    rng = random.Random(1000 + trial)
    model, floor = _random_latency(rng)
    seed = rng.randrange(1 << 16)
    workers = 2 + 2 * (trial % 2)
    parallel_snapshot = _run(workers, model, floor, seed)  # asserts inside
    assert parallel_snapshot == _run(1, model, floor, seed)


def test_absorb_rejects_a_message_below_the_window_floor():
    """The runtime invariant check actually fires (legacy wire mode)."""
    config = SimulationConfig(
        seed=3,
        network=NetworkConfig(
            min_latency=5.0, max_latency=10.0, pair_rng_streams=True
        ),
        parallel_workers=2,
        packed_wire=False,
        shared_arena=False,
    )
    sim = Simulation.create(config)
    sim.add_sites(["A", "B", "C", "D"], auto_gc=False)
    sim.run_for(1.0)  # forks the pool
    assert sim.parallel_active
    worker = sim._pool.workers[0]
    inf = float("inf")
    forged = ("ok", None, [(5.0, None)], pack_reply_meta(inf, inf, 0))
    with pytest.raises(SimulationError, match="window-safety"):
        sim._absorb(worker, forged, floor=100.0)
    sim.close()
