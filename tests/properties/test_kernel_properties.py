"""Property tests for the simulation kernel itself.

The correctness of everything above rests on two kernel guarantees: the
scheduler fires events in (time, insertion) order, and the network delivers
per-pair FIFO when configured to (the paper's R1).  Hypothesis hammers both.
"""

from __future__ import annotations

from dataclasses import dataclass

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import NetworkConfig
from repro.metrics import MetricsRecorder
from repro.net.latency import ExponentialLatency
from repro.net.message import Payload
from repro.net.network import Network
from repro.sim.rng import RngRegistry
from repro.sim.scheduler import Scheduler


@given(
    st.lists(
        st.tuples(st.floats(min_value=0.0, max_value=100.0), st.integers()),
        min_size=1,
        max_size=60,
    )
)
@settings(max_examples=150, deadline=None)
def test_scheduler_total_order(items):
    sched = Scheduler()
    fired = []
    for order, (delay, tag) in enumerate(items):
        sched.schedule(delay, lambda d=delay, o=order, t=tag: fired.append((d, o, t)))
    sched.drain()
    assert len(fired) == len(items)
    # Fired order must be sorted by (time, insertion order).
    keys = [(delay, order) for delay, order, _ in fired]
    assert keys == sorted(keys)


@given(
    st.lists(
        st.tuples(st.floats(min_value=0.0, max_value=50.0), st.sampled_from("ABC")),
        min_size=1,
        max_size=80,
    ),
    st.integers(0, 100),
)
@settings(max_examples=100, deadline=None)
def test_network_fifo_per_pair_under_any_send_pattern(sends, seed):
    """Messages A->dst interleaved with arbitrary delays and heavy-tailed
    latencies still arrive per-destination in send order."""

    @dataclass(frozen=True)
    class Tagged(Payload):
        n: int = 0

    sched = Scheduler()
    metrics = MetricsRecorder()
    net = Network(
        sched,
        RngRegistry(seed),
        metrics,
        config=NetworkConfig(),
        latency_model=ExponentialLatency(base=0.1, mean=10.0),
    )
    received = {dst: [] for dst in "ABC"}
    for dst in "ABC":
        net.register(dst, (lambda d: lambda msg: received[d].append(msg.payload.n))(dst))

    counter = [0]

    def send_later(delay, dst):
        def fire():
            net.send("A", dst, Tagged(counter[0]))
            counter[0] += 1

        sched.schedule(delay, fire)

    for delay, dst in sends:
        send_later(delay, dst)
    sched.drain()
    merged = sorted(
        (n for inbox in received.values() for n in inbox)
    )
    assert merged == list(range(counter[0]))  # nothing lost or duplicated
    for inbox in received.values():
        assert inbox == sorted(inbox)  # per-pair FIFO


@given(st.integers(0, 1000))
@settings(max_examples=30, deadline=None)
def test_network_without_fifo_never_loses_messages(seed):
    @dataclass(frozen=True)
    class Tick(Payload):
        n: int = 0

    sched = Scheduler()
    net = Network(
        sched,
        RngRegistry(seed),
        MetricsRecorder(),
        config=NetworkConfig(fifo_per_pair=False),
        latency_model=ExponentialLatency(base=0.1, mean=5.0),
    )
    inbox = []
    net.register("B", lambda msg: inbox.append(msg.payload.n))
    net.register("A", lambda msg: None)
    for n in range(40):
        net.send("A", "B", Tick(n))
    sched.drain()
    assert sorted(inbox) == list(range(40))
