"""Property-based tests of protocol-level invariants.

- update messages are idempotent state transfers (applying one twice equals
  applying it once) -- the property the self-healing full refresh relies on;
- the whole-system safety property: random small worlds with random cut
  schedules never lose a live object and always drain to zero garbage.
"""

from __future__ import annotations

import dataclasses

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import GcConfig
from repro.analysis import Oracle
from repro.gc.inrefs import InrefTable
from repro.gc.update import UpdatePayload, apply_update
from repro.ids import ObjectId
from repro.workloads import GraphBuilder

from ..conftest import make_sim


# -- update idempotence -----------------------------------------------------------


@st.composite
def inref_tables_and_updates(draw):
    table = InrefTable("R", suspicion_threshold=4, initial_back_threshold=12)
    n_entries = draw(st.integers(1, 8))
    targets = []
    for serial in range(n_entries):
        target = ObjectId("R", serial)
        sources = draw(
            st.sets(st.sampled_from(["P", "Q", "S"]), min_size=1, max_size=3)
        )
        for source in sources:
            table.ensure(target, source=source, distance=draw(st.integers(1, 20)))
        targets.append(target)
    update_targets = draw(st.sets(st.sampled_from(targets), max_size=n_entries))
    distances = tuple(
        (target, draw(st.integers(1, 30))) for target in sorted(update_targets)
    )
    removal_pool = [t for t in targets if t not in update_targets]
    removals = tuple(
        sorted(draw(st.sets(st.sampled_from(removal_pool), max_size=3)))
        if removal_pool
        else []
    )
    full = draw(st.booleans())
    payload = UpdatePayload(distances=distances, removals=removals, full=full)
    return table, payload


def table_state(table: InrefTable):
    return {
        entry.target: dict(entry.sources) for entry in table.entries()
    }


@given(inref_tables_and_updates())
@settings(max_examples=200, deadline=None)
def test_update_application_is_idempotent(data):
    table, payload = data
    apply_update(table, "P", payload)
    first = table_state(table)
    changed_again = apply_update(table, "P", payload)
    assert table_state(table) == first
    # A repeated full update may report "changed" only if it removed
    # something new -- which it cannot have, given identical input.
    assert not changed_again


@given(inref_tables_and_updates())
@settings(max_examples=100, deadline=None)
def test_full_update_prunes_unlisted_sources(data):
    table, payload = data
    if not payload.full:
        payload = dataclasses.replace(payload, full=True)
    listed = {target for target, _ in payload.distances} | set(payload.removals)
    apply_update(table, "P", payload)
    for entry in table.entries():
        if "P" in entry.sources:
            assert entry.target in listed


# -- whole-system randomized safety/completeness --------------------------------------


@st.composite
def small_worlds(draw):
    """A random 3-site world: objects, random edges, random root wiring."""
    n_per_site = draw(st.integers(2, 6))
    edges = draw(
        st.lists(
            st.tuples(st.integers(0, 3 * n_per_site - 1), st.integers(0, 3 * n_per_site - 1)),
            max_size=4 * n_per_site,
        )
    )
    rooted = draw(st.sets(st.integers(0, 3 * n_per_site - 1), min_size=1, max_size=4))
    cuts = draw(st.lists(st.integers(0, max(0, len(edges) - 1)), max_size=4))
    return n_per_site, edges, rooted, cuts


@given(small_worlds(), st.integers(0, 3))
@settings(max_examples=60, deadline=None)
def test_random_worlds_safe_and_complete(world, seed):
    n_per_site, edges, rooted, cuts = world
    sites = ["s0", "s1", "s2"]
    sim = make_sim(
        seed=seed,
        sites=sites,
        gc=GcConfig(suspicion_threshold=2, assumed_cycle_length=3),
    )
    builder = GraphBuilder(sim)
    objects = []
    for index in range(3 * n_per_site):
        objects.append(builder.obj(sites[index % 3]))
    for index in rooted:
        sim.site(objects[index].site).heap.make_persistent_root(objects[index])
    edge_list = []
    for src_index, dst_index in edges:
        builder.link(objects[src_index], objects[dst_index])
        edge_list.append((objects[src_index], objects[dst_index]))
    oracle = Oracle(sim)
    for _ in range(2):
        sim.run_gc_round()
        oracle.check_safety()
    # Random deletions through the mutator API.
    for cut_index in cuts:
        if not edge_list:
            break
        src, dst = edge_list[cut_index % len(edge_list)]
        site = sim.site(src.site)
        obj = site.heap.maybe_get(src)
        if obj is not None and obj.holds_ref(dst):
            site.mutator_remove_ref(src, dst)
    # The system must stay safe at every round and drain completely.
    for _ in range(60):
        sim.run_gc_round()
        oracle.check_safety()
        if not oracle.garbage_set():
            break
    assert not oracle.garbage_set()
