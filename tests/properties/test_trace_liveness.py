"""Liveness of the back-trace protocol under message loss.

Safety under loss is covered elsewhere; this checks the *liveness* half of
section 4.6: thanks to frame and outcome timeouts, every started trace
reaches a verdict and releases its state -- no frame, visited mark, or trace
record lingers forever, whatever fraction of messages the network eats.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import GcConfig, NetworkConfig
from repro.workloads import build_ring_cycle

from tests.conftest import make_sim


@given(
    st.integers(min_value=2, max_value=6),    # ring size
    st.floats(min_value=0.0, max_value=0.9),  # drop probability
    st.integers(min_value=0, max_value=500),  # seed
)
@settings(max_examples=40, deadline=None)
def test_every_started_trace_terminates_and_cleans_up(n_sites, drop, seed):
    sites = [f"s{i}" for i in range(n_sites)]
    sim = make_sim(
        seed=seed,
        sites=sites,
        gc=GcConfig(backtrace_timeout=40.0),
        network=NetworkConfig(drop_probability=drop),
    )
    workload = build_ring_cycle(sim, sites)
    workload.make_garbage(sim)
    # Force suspicion and compute insets so a trace can start immediately.
    for site in sim.sites.values():
        for entry in site.inrefs.entries():
            for source in entry.sources:
                entry.sources[source] = 9
    for site_id in sites:
        sim.sites[site_id].run_local_trace()
    sim.settle()
    started = []
    for site in sim.sites.values():
        for entry in site.outrefs.suspected_entries():
            trace_id = site.engine.start_trace(entry.target)
            if trace_id is not None:
                started.append(trace_id)
    # Give the system ample time relative to the timeouts.
    sim.run_for(20 * 40.0)
    sim.settle()
    for site in sim.sites.values():
        engine = site.engine
        assert engine.active_trace_count == 0
        assert not engine._frames, f"frames linger at {site.site_id}"
        assert not engine._active_by_ioref
        for entry in list(site.inrefs.entries()) + list(site.outrefs.entries()):
            assert not entry.visited, f"visited marks linger at {site.site_id}"
