"""Shared test fixtures and helpers."""

from __future__ import annotations

import pytest

from repro import GcConfig, NetworkConfig, Simulation, SimulationConfig
from repro.analysis import Oracle
from repro.workloads import GraphBuilder


def make_sim(
    seed: int = 0,
    sites=("P", "Q", "R"),
    auto_gc: bool = False,
    gc: GcConfig = None,
    network: NetworkConfig = None,
    latency_model=None,
) -> Simulation:
    """A simulation with the given sites and controlled (manual) GC."""
    config = SimulationConfig(
        seed=seed,
        gc=gc or GcConfig(),
        network=network or NetworkConfig(),
    )
    sim = Simulation(config, latency_model=latency_model)
    sim.add_sites(list(sites), auto_gc=auto_gc)
    return sim


def collect_until_clean(
    sim: Simulation, oracle: Oracle, max_rounds: int = 60, check_safety: bool = True
) -> int:
    """Run GC rounds until no garbage remains; return rounds used.

    Raises AssertionError if garbage persists after ``max_rounds``.
    """
    for round_number in range(1, max_rounds + 1):
        sim.run_gc_round()
        if check_safety:
            oracle.check_safety()
        if not oracle.garbage_set():
            return round_number
    remaining = oracle.garbage_set()
    raise AssertionError(
        f"{len(remaining)} garbage objects remain after {max_rounds} rounds: "
        f"{sorted(remaining)[:8]}"
    )


@pytest.fixture
def sim():
    return make_sim()


@pytest.fixture
def builder(sim):
    return GraphBuilder(sim)


@pytest.fixture
def oracle(sim):
    return Oracle(sim)
