"""E16 (extension) -- Sharded parallel engine: equivalence and speedup.

The sharded engine (:mod:`repro.sim.parallel`) promises two things:

1. **Determinism** -- a parallel run is indistinguishable from a sequential
   run of the same seed: same final heaps, same inref/outref tables, same
   collection survivors.  This bench (and the integration tests) verify it
   by comparing full snapshots byte for byte.
2. **Speedup** -- with enough cores, partitioning 64 sites of churn +
   periodic GC across worker processes beats one scheduler.  Windows are
   widened by a larger ``min_latency`` (the conservative lookahead bound) so
   each coordinator round trip amortizes over many events.

Wall-clock speedup is only physically possible when the host actually has
cores to spare, so the speedup acceptance is gated on ``os.cpu_count()``;
the pinned JSON (BENCH_parallel_sim.json) records the host's core count
next to the numbers so they can be read honestly.
"""

import json
import os
import time

import pytest

from repro import GcConfig, NetworkConfig, Simulation, SimulationConfig
from repro.harness.report import Table
from repro.sim.parallel import ParallelSimulation
from repro.workloads import ChurnConfig, SiteChurn

N_SITES = 64
DURATION = 2000.0
# Wide lookahead windows: each safe-time round trip covers ~8 time units of
# events instead of ~1, amortizing the coordinator IPC.
NETWORK = dict(min_latency=8.0, max_latency=24.0, pair_rng_streams=True)
GC = dict(local_trace_period=150.0, local_trace_period_jitter=30.0)


def _build(workers, n_sites, seed=3, gc_features=None):
    config = SimulationConfig(
        seed=seed,
        network=NetworkConfig(**NETWORK),
        gc=GcConfig(**GC, **(gc_features or {})),
        parallel_workers=workers,
    )
    sim = Simulation.create(config)
    sites = [f"s{i:03d}" for i in range(n_sites)]
    sim.add_sites(sites, auto_gc=True)
    churn = SiteChurn(
        sim, sites, ChurnConfig(mean_interval=3.0, send_weight=2.5)
    )
    churn.start()
    return sim


def run_engine(workers, n_sites=N_SITES, duration=DURATION, seed=3, gc_features=None):
    """One timed run; returns wall time, event throughput, and the snapshot."""
    sim = _build(workers, n_sites, seed=seed, gc_features=gc_features)
    started = time.perf_counter()
    fired = sim.run_for(duration)
    wall_seconds = time.perf_counter() - started
    coordination = None
    if isinstance(sim, ParallelSimulation):
        final = sim.snapshot()
        metrics = sim.merged_metrics()
        if sim.parallel_active:
            coordination = sim.coordination_stats()
        sim.close()
    else:
        from repro.analysis.export import snapshot

        final = snapshot(sim)
        metrics = sim.metrics
    row = {
        "workers": workers,
        "events": fired,
        "wall_seconds": wall_seconds,
        "events_per_sec": fired / wall_seconds if wall_seconds > 0 else 0.0,
        "churn_ops": metrics.count("churn.ops"),
        "messages": metrics.count("messages.total"),
        "snapshot": final,
    }
    if coordination is not None:
        windows = max(1, coordination["windows"])
        row.update(
            windows=coordination["windows"],
            eot_jumps=coordination["eot_jumps"],
            quiescence_jumps=coordination["quiescence_jumps"],
            pipelined_windows=coordination["pipelined_windows"],
            msgs_per_window=coordination["cross_shard_messages"] / windows,
        )
    return row


def run_comparison(n_sites=N_SITES, duration=DURATION, worker_counts=(1, 2, 4)):
    return {
        workers: run_engine(workers, n_sites=n_sites, duration=duration)
        for workers in worker_counts
    }


# -- pytest entry points -----------------------------------------------------


def test_e16_parallel_matches_sequential(benchmark, record_table):
    """CI-sized twin run: 16 sites, 2 workers, identical final snapshot."""

    def run():
        return run_comparison(n_sites=16, duration=600.0, worker_counts=(1, 2))

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    table = Table(
        "E16: sequential vs sharded engine (16 sites, 600 time units)",
        ["workers", "events", "events/s", "churn ops", "msgs", "wall (s)"],
    )
    for workers, row in sorted(stats.items()):
        table.add_row(
            workers,
            row["events"],
            f"{row['events_per_sec']:.0f}",
            row["churn_ops"],
            row["messages"],
            f"{row['wall_seconds']:.3f}",
        )
    record_table("e16_parallel_engine", table)

    # Determinism is the headline requirement: every engine, same state.
    assert stats[1]["snapshot"] == stats[2]["snapshot"]
    assert stats[1]["events"] == stats[2]["events"]
    assert stats[1]["churn_ops"] == stats[2]["churn_ops"]


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4,
    reason="speedup needs >= 4 physical cores; equivalence is tested above",
)
def test_e16_parallel_speedup(benchmark):
    stats = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    assert stats[1]["snapshot"] == stats[4]["snapshot"]
    assert stats[4]["wall_seconds"] * 2.0 <= stats[1]["wall_seconds"]


if __name__ == "__main__":
    # Standalone mode: emit the comparison as JSON so the repo can pin the
    # headline numbers (see BENCH_parallel_sim.json).  ``--smoke`` runs a
    # shortened window for CI.
    import sys

    try:
        from .hostinfo import host_header
    except ImportError:
        from hostinfo import host_header

    smoke = "--smoke" in sys.argv
    n_sites = 16 if smoke else N_SITES
    if "--sites" in sys.argv:
        n_sites = int(sys.argv[sys.argv.index("--sites") + 1])
    duration = 400.0 if smoke else DURATION
    stats = run_comparison(n_sites=n_sites, duration=duration)
    # The sequential baseline above uses the flat-graph kernel (the default);
    # record the legacy set-based kernel next to it so the JSON separates
    # "how much the kernel buys" from "how much the workers buy".
    legacy_seq = run_engine(
        1, n_sites=n_sites, duration=duration, gc_features=dict(flat_kernel=False)
    )
    snapshots = [row.pop("snapshot") for row in stats.values()]
    legacy_snapshot = legacy_seq.pop("snapshot")
    results = {
        "sites": n_sites,
        "duration": duration,
        "host": host_header(),
        "snapshots_identical": all(s == snapshots[0] for s in snapshots)
        and legacy_snapshot == snapshots[0],
    }
    for workers, row in sorted(stats.items()):
        key = "sequential" if workers == 1 else f"workers_{workers}"
        results[key] = row
    results["sequential_legacy_kernel"] = legacy_seq
    if legacy_seq["wall_seconds"] > 0 and stats[1]["wall_seconds"] > 0:
        results["flat_kernel_speedup"] = (
            legacy_seq["wall_seconds"] / stats[1]["wall_seconds"]
        )
    for workers in (2, 4):
        if workers in stats and stats[workers]["wall_seconds"] > 0:
            results[f"speedup_{workers}x"] = (
                stats[1]["wall_seconds"] / stats[workers]["wall_seconds"]
            )
    json.dump(results, sys.stdout, indent=2)
    print()
    if not results["snapshots_identical"]:
        sys.exit(1)
