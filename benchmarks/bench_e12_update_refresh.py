"""E12 (ablation) -- the self-healing full-refresh period of update messages.

Our one deliberate protocol extension over the paper (which assumes a
fault-tolerant reference-listing layer, ML94): every ``full_update_period``-th
local trace resends all outref distances as an idempotent full update, so
state lost to crashes/partitions resynchronizes without acknowledgements.
The ablation measures the trade: smaller periods recover faster from a
crash-induced distance-propagation stall but send more update traffic.
A period of effectively-infinity reproduces the stall this mechanism fixes.
"""

import dataclasses

import pytest

from repro import GcConfig, Simulation, SimulationConfig
from repro.analysis import Oracle
from repro.harness.report import Table
from repro.workloads import build_ring_cycle

BASE = GcConfig(backtrace_timeout=30.0)


def run_crash_recovery(full_update_period, max_rounds=60):
    gc = dataclasses.replace(BASE, full_update_period=full_update_period)
    sites = ["a", "b", "c"]
    sim = Simulation(SimulationConfig(seed=6, gc=gc))
    sim.add_sites(sites, auto_gc=False)
    workload = build_ring_cycle(sim, sites)
    for _ in range(2):
        sim.run_gc_round()
    workload.make_garbage(sim)
    # Crash a member for a few rounds: updates to it are lost, freezing the
    # cycle's distance loop at a fixed point below the trigger threshold.
    sim.site("c").crash()
    for _ in range(6):
        sim.run_gc_round()
    sim.site("c").recover()
    oracle = Oracle(sim)
    recovered_in = None
    for round_number in range(1, max_rounds + 1):
        sim.run_gc_round()
        oracle.check_safety()
        if not oracle.garbage_set():
            recovered_in = round_number
            break
    return {
        "recovered_in": recovered_in,
        "update_msgs": sim.metrics.count("messages.UpdatePayload"),
        "update_units": sim.metrics.count("messages.units"),
    }


def test_e12_refresh_period_sweep(benchmark, record_table):
    def run():
        rows = []
        for period in (1, 2, 4, 8, 1000):
            stats = run_crash_recovery(period)
            rows.append((period, stats))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = Table(
        "E12: full-refresh period vs crash recovery (3-site cycle, member down 6 rounds)",
        ["full_update_period", "rounds to collect after recovery", "update msgs", "update units"],
    )
    results = {}
    for period, stats in rows:
        results[period] = stats
        table.add_row(
            period,
            stats["recovered_in"] if stats["recovered_in"] is not None else "stalled",
            stats["update_msgs"],
            stats["update_units"],
        )
    record_table("e12_refresh", table)
    # Frequent refresh recovers; effectively-never reproduces the stall.
    assert results[1]["recovered_in"] is not None
    assert results[4]["recovered_in"] is not None
    assert results[1000]["recovered_in"] is None
    # And refreshing more often costs more update volume.
    assert results[1]["update_units"] >= results[8]["update_units"]
    # Faster (or equal) recovery with the more aggressive refresh.
    assert results[1]["recovered_in"] <= results[8]["recovered_in"]
