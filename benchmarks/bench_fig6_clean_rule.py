"""F6 -- Figure 6: the non-atomic back trace race and the clean rule.

The figure's problem case: back-trace branches and the mutator's traversal
race across the network; depending on delivery order, either a branch sees
the barrier's cleaning (clean rule forces Live) or it sees the updated back
information.  Across many seeds / latency draws, every interleaving must be
safe and every verdict involving the racing structure must be Live while the
new reference keeps it alive.
"""

import pytest

from repro import GcConfig
from repro.analysis import Oracle
from repro.core.backtrace.messages import TraceOutcome
from repro.harness.report import Table
from repro.mutator import Mutator

from tests.integration.test_barrier_safety import (
    build_race_topology,
    prepare_stale_suspicion,
)


def run_race(seed):
    sim, b = build_race_topology(GcConfig(), seed=seed)
    prepare_stale_suspicion(sim, b)
    oracle = Oracle(sim)
    mutator = Mutator(sim, "m", b["rootR"])
    mutator.traverse(b["e"], check_held=True)
    # Fire the trace and the racing hop back-to-back.
    sim.site("Q").engine.start_trace(b["g"])
    mutator.traverse(b["f"])
    sim.run_for(2.0)
    sim.settle()
    copied = False
    if not mutator.in_transit and mutator.position == b["f"]:
        mutator.traverse(b["z"])
        mutator.set_variable("zref", b["z"])
        mutator._arrived(b["a"])
        mutator.traverse(b["b"])
        sim.settle()
        mutator.traverse(b["y"])
        mutator.store_ref(b["z"], holder=b["y"])
        mutator.clear_variable("zref")
        copied = True
    sim.site("R").mutator_remove_ref(b["e"], b["f"])
    verdicts = [outcome[3] for outcome in sim.trace_outcomes]
    oracle.check_safety()
    for _ in range(8):
        sim.run_gc_round()
        oracle.check_safety()
    z_alive = sim.site("Q").heap.contains(b["z"])
    clean_hits = sim.metrics.count("backtrace.clean_rule_hits")
    # Drain to empty.
    residual = None
    for round_number in range(1, 60):
        sim.run_gc_round()
        oracle.check_safety()
        if not oracle.garbage_set():
            residual = 0
            break
    return {
        "copied": copied,
        "z_alive": z_alive,
        "verdicts": verdicts,
        "clean_hits": clean_hits,
        "residual": residual,
    }


def test_fig6_race_sweep(benchmark, record_table):
    def run():
        return [(seed, run_race(seed)) for seed in range(12)]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = Table(
        "F6 (Figure 6): 12 random interleavings of {back trace, mutator hop, deletion}",
        ["seed", "copy landed", "z survives", "early verdicts", "clean-rule hits", "residual garbage"],
    )
    for seed, stats in rows:
        table.add_row(
            seed,
            "yes" if stats["copied"] else "no",
            "yes" if stats["z_alive"] else "no",
            ",".join(v.value for v in stats["verdicts"]) or "-",
            stats["clean_hits"],
            stats["residual"] if stats["residual"] is not None else "LEAK",
        )
    record_table("fig6_race", table)
    for seed, stats in rows:
        # Safety held on every interleaving (oracle inside run_race), the
        # system converged to zero garbage, and whenever the copy landed the
        # live object survived.
        assert stats["residual"] == 0
        if stats["copied"]:
            assert stats["z_alive"]
        # An early verdict during the race window is never Garbage for the
        # racing structure while the mutation could still land.
        assert TraceOutcome.GARBAGE not in stats["verdicts"] or not stats["copied"]
