"""E15 (extension) -- Back-trace verdict caching at steady state.

The paper re-examines live suspects forever: a Live verdict only holds "for
now", so a stable live cycle pinned above the back threshold is traced again
and again, each pass paying the full BackCall/BackReply fan-out across every
participant.  The verdict cache (``GcConfig.backtrace_cache``) answers those
re-examinations from an epoch-guarded snapshot instead, and call batching
coalesces what fan-out remains into per-destination physical messages.

The bench builds a 16-site system whose steady state is dominated by live
cycles held above the threshold (their back thresholds are reset every round
to model the paper's periodic re-examination horizon), plus garbage rings
that are collected during warm-up.  It then measures the steady-state window
twice -- optimizations on vs. off -- and requires a >=5x reduction in
back-trace message units and iorefs visited, with byte-identical survivors.
"""

import time

import pytest

from repro import GcConfig, Simulation, SimulationConfig
from repro.analysis import Oracle
from repro.harness.report import Table
from repro.workloads import build_ring_cycle

N_SITES = 16
N_LIVE_CYCLES = 8
N_GARBAGE_RINGS = 4
STEADY_ROUNDS = 24

# Low thresholds keep the live cycles' distance estimates above the trigger
# point.  The TTL is the promptness/savings dial: one gc round advances
# simulated time by ~850 units at 16 sites, so 60 ticks (6000 units, about 7
# rounds) lets a cached Live answer ~7 consecutive re-examinations while
# still bounding how long a stale Live can delay noticing new garbage.
TUNING = dict(
    suspicion_threshold=2,
    assumed_cycle_length=2,
    back_threshold_increment=1,
    backtrace_cache_ttl_ticks=60,
)

BACK_MESSAGE_KINDS = ("BackCall", "BackCallBatch", "BackReply", "BackReplyBatch")


def _build_system(seed, gc):
    sites = [f"s{i:02d}" for i in range(N_SITES)]
    sim = Simulation(SimulationConfig(seed=seed, gc=gc))
    sim.add_sites(sites, auto_gc=False)
    # Live load: anchored 4-site cycles on overlapping windows, so every site
    # participates in two of them and back traces span several sites.
    live = [
        build_ring_cycle(sim, [sites[(2 * k + j) % N_SITES] for j in range(4)])
        for k in range(N_LIVE_CYCLES)
    ]
    # Garbage load: disjoint 4-site rings, cut loose after warm-up.
    doomed = [
        build_ring_cycle(sim, sites[4 * k : 4 * k + 4]) for k in range(N_GARBAGE_RINGS)
    ]
    return sim, live, doomed


def _reset_back_thresholds(sim):
    """Model the paper's re-examination horizon: suspects get re-traced.

    Back thresholds ratchet after every Live verdict, so without an external
    horizon the system would simply stop re-examining; the paper expects the
    threshold to be revisited periodically (section 4.3).  Dropping the
    threshold back to the suspicion threshold makes every still-suspected
    outref due for re-examination each round -- the worst case the cache is
    built for.  The reset does not touch entry epochs, so cached verdicts
    stay valid across it.
    """
    for site_id in sorted(sim.sites):
        site = sim.sites[site_id]
        for entry in site.outrefs.suspected_entries():
            entry.back_threshold = site.config.suspicion_threshold


def run_steady_state(optimized, seed=3, steady_rounds=STEADY_ROUNDS):
    gc = GcConfig(
        **TUNING,
        backtrace_cache=optimized,
        backtrace_coalesce=optimized,
        backtrace_batch_calls=optimized,
    )
    sim, live, doomed = _build_system(seed, gc)
    for _ in range(2):
        sim.run_gc_round()
    for ring in doomed:
        ring.make_garbage(sim)
    oracle = Oracle(sim)
    for _ in range(60):
        sim.run_gc_round()
        oracle.check_safety()
        if not oracle.garbage_set():
            break
    assert not oracle.garbage_set()

    before = sim.metrics.snapshot()
    started = time.perf_counter()
    for _ in range(steady_rounds):
        _reset_back_thresholds(sim)
        sim.run_gc_round()
        oracle.check_safety()
    wall_seconds = time.perf_counter() - started
    delta = sim.metrics.snapshot().diff(before)

    assert not oracle.garbage_set()
    for ring in live:
        for member in ring.cycle:
            assert sim.site(member.site).heap.contains(member)
    survivors = {
        site_id: frozenset(sim.sites[site_id].heap.object_ids())
        for site_id in sim.sites
    }
    return {
        "mode": "optimized" if optimized else "baseline",
        "back_units": sum(delta.get(f"units.{k}", 0) for k in BACK_MESSAGE_KINDS),
        "back_msgs": sum(delta.get(f"messages.{k}", 0) for k in BACK_MESSAGE_KINDS),
        "outcomes": delta.get("messages.BackOutcome", 0),
        "iorefs_visited": delta.get("backtrace.iorefs_visited", 0),
        "traces_started": delta.get("backtrace.started", 0),
        "cache_hits": delta.get("backtrace.cache_hits", 0),
        "coalesced": delta.get("backtrace.coalesced", 0),
        "calls_batched": delta.get("backtrace.calls_batched", 0),
        "wall_seconds": wall_seconds,
        "survivors": survivors,
    }


def _ratio(baseline, optimized):
    return baseline / max(1, optimized)


def run_comparison(steady_rounds=STEADY_ROUNDS):
    return {
        mode: run_steady_state(mode, steady_rounds=steady_rounds)
        for mode in (False, True)
    }


def test_e15_steady_state_cache(benchmark, record_table):
    stats = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    base, opt = stats[False], stats[True]
    table = Table(
        f"E15: steady-state re-examination ({STEADY_ROUNDS} rounds, "
        f"{N_SITES} sites, {N_LIVE_CYCLES} live cycles)",
        [
            "mode",
            "traces",
            "back-trace units",
            "physical msgs",
            "iorefs visited",
            "cache hits",
            "wall (s)",
        ],
    )
    for row in (base, opt):
        table.add_row(
            row["mode"],
            row["traces_started"],
            row["back_units"],
            row["back_msgs"],
            row["iorefs_visited"],
            row["cache_hits"],
            f"{row['wall_seconds']:.3f}",
        )
    record_table("e15_backtrace_cache", table)

    # Acceptance: the cache answers the steady state -- >=5x fewer back-trace
    # message units and iorefs visited -- without changing what survives.
    assert _ratio(base["back_units"], opt["back_units"]) >= 5.0
    assert _ratio(base["iorefs_visited"], opt["iorefs_visited"]) >= 5.0
    assert opt["cache_hits"] > 0
    assert base["survivors"] == opt["survivors"]


@pytest.mark.parametrize("optimized", [False, True])
def test_e15_wall_time(benchmark, optimized):
    stats = benchmark.pedantic(
        run_steady_state, args=(optimized,), kwargs={"steady_rounds": 8}, rounds=1, iterations=1
    )
    assert not stats["traces_started"] < 0


if __name__ == "__main__":
    # Standalone mode: emit the comparison as JSON so the repo can pin the
    # headline numbers (see BENCH_backtrace_cache.json).  ``--smoke`` runs a
    # shortened window for CI.
    import json
    import sys

    try:
        from .hostinfo import host_header
    except ImportError:
        from hostinfo import host_header

    rounds = 8 if "--smoke" in sys.argv else STEADY_ROUNDS
    stats = run_comparison(steady_rounds=rounds)
    results = {"host": host_header()}
    results |= {
        row["mode"]: {k: v for k, v in row.items() if k not in ("survivors", "mode")}
        for row in stats.values()
    }
    results["steady_rounds"] = rounds
    results["back_units_ratio"] = _ratio(
        stats[False]["back_units"], stats[True]["back_units"]
    )
    results["iorefs_visited_ratio"] = _ratio(
        stats[False]["iorefs_visited"], stats[True]["iorefs_visited"]
    )
    results["survivors_identical"] = stats[False]["survivors"] == stats[True]["survivors"]
    json.dump(results, sys.stdout, indent=2)
    print()
