"""E1 -- Message complexity of a back trace (paper section 4.6).

Claim: a back trace over a cycle residing on N sites with E inter-site
references sends 2E + N messages: one call and one reply per inter-site
reference traversed, plus the report phase.  (Our initiator applies its own
outcome locally, so the measured report cost is N - 1 messages; the paper
counts "a message to each participant".)

The bench sweeps ring and clique cycles, counts BackCall / BackReply /
BackOutcome for the confirming trace, and checks the formula exactly.
"""

import pytest

from repro import GcConfig, Simulation, SimulationConfig
from repro.analysis import Oracle
from repro.harness.report import Table
from repro.workloads import build_clique_cycle, build_ring_cycle


def run_cycle_collection(builder, n_sites):
    sites = [f"s{i}" for i in range(n_sites)]
    # Scale the thresholds with the topology, as section 4.3 prescribes: T
    # above the longest live inter-site path (so nothing live is suspected)
    # and L a conservative cycle length (so the first trace confirms).
    gc = GcConfig(
        suspicion_threshold=n_sites + 4,
        assumed_cycle_length=2 * n_sites,
    )
    sim = Simulation(SimulationConfig(seed=1, gc=gc))
    sim.add_sites(sites, auto_gc=False)
    workload = builder(sim, sites)
    # Long settle windows keep local-trace commits far apart relative to
    # back-trace latency, matching the paper's timing assumption (section
    # 4.7): the first trace on a cycle finishes before another could start.
    settle = 400.0
    for _ in range(2):
        sim.run_gc_round(settle_time=settle)
    workload.make_garbage(sim)
    oracle = Oracle(sim)
    before = None
    for _ in range(80):
        snap = sim.metrics.snapshot()
        sim.run_gc_round(settle_time=settle)
        if sim.metrics.count("backtrace.started") > 0:
            before = snap
            break
    assert before is not None, "no back trace triggered"
    delta = sim.metrics.snapshot().diff(before)
    assert delta.get("backtrace.started", 0) == 1, "expected a single trace"
    for _ in range(80):
        if not oracle.garbage_set():
            break
        sim.run_gc_round(settle_time=settle)
    oracle.check_safety()
    assert not oracle.garbage_set()
    return workload, delta


@pytest.mark.parametrize("n_sites", [2, 3, 4, 8, 16])
def test_ring_message_complexity(benchmark, record_table, n_sites):
    workload, delta = benchmark.pedantic(
        run_cycle_collection, args=(build_ring_cycle, n_sites), rounds=1, iterations=1
    )
    edges = workload.inter_site_edges
    calls = delta.get("messages.BackCall", 0)
    replies = delta.get("messages.BackReply", 0)
    outcomes = delta.get("messages.BackOutcome", 0)
    assert calls == edges
    assert replies == edges
    assert outcomes == n_sites - 1

    table = Table(
        f"E1 ring N={n_sites}: back-trace messages vs 2E+N bound",
        ["topology", "sites N", "edges E", "calls", "replies", "reports", "total", "2E+(N-1)"],
    )
    table.add_row(
        "ring", n_sites, edges, calls, replies, outcomes,
        calls + replies + outcomes, 2 * edges + n_sites - 1,
    )
    record_table(f"e1_ring_n{n_sites}", table)


@pytest.mark.parametrize("n_sites", [2, 3, 4, 6])
def test_clique_message_complexity(benchmark, record_table, n_sites):
    workload, delta = benchmark.pedantic(
        run_cycle_collection, args=(build_clique_cycle, n_sites), rounds=1, iterations=1
    )
    edges = workload.inter_site_edges
    calls = delta.get("messages.BackCall", 0)
    replies = delta.get("messages.BackReply", 0)
    outcomes = delta.get("messages.BackOutcome", 0)
    # In a clique every inter-site reference is traversed exactly once.
    assert calls == edges
    assert replies == edges
    assert outcomes == n_sites - 1

    table = Table(
        f"E1 clique N={n_sites}: back-trace messages vs 2E+N bound",
        ["topology", "sites N", "edges E", "calls", "replies", "reports", "total", "2E+(N-1)"],
    )
    table.add_row(
        "clique", n_sites, edges, calls, replies, outcomes,
        calls + replies + outcomes, 2 * edges + n_sites - 1,
    )
    record_table(f"e1_clique_n{n_sites}", table)


def test_e1_summary_series(benchmark, record_table):
    """The full series in one table (the 'figure' for this experiment)."""

    def build_series():
        rows = []
        for builder, name, site_counts in (
            (build_ring_cycle, "ring", [2, 3, 4, 8, 16, 32]),
            (build_clique_cycle, "clique", [2, 4, 6, 8]),
        ):
            for n_sites in site_counts:
                workload, delta = run_cycle_collection(builder, n_sites)
                rows.append(
                    (
                        name,
                        n_sites,
                        workload.inter_site_edges,
                        delta.get("messages.BackCall", 0)
                        + delta.get("messages.BackReply", 0)
                        + delta.get("messages.BackOutcome", 0),
                        2 * workload.inter_site_edges + n_sites - 1,
                    )
                )
        return rows

    rows = benchmark.pedantic(build_series, rounds=1, iterations=1)
    table = Table(
        "E1 series: back-trace message cost scales with the cycle, not the system",
        ["topology", "sites N", "edges E", "measured total", "2E+(N-1)"],
    )
    for row in rows:
        table.add_row(*row)
        assert row[3] == row[4]
    record_table("e1_series", table)
