"""E10 (extension) -- Deferral and piggybacking of control messages (§4.6).

The paper: back-trace messages "are small and can be piggybacked on other
messages", costing "tenths of a second [per site] if messages are deferred
and piggybacked" instead of milliseconds.  This ablation measures the trade
on a workload of parallel 2-site cycles (whose traces' calls and replies
cluster per destination): physical messages and bytes-on-wire go down,
collection latency goes up by a bounded amount.
"""

import pytest

from repro import GcConfig, Simulation, SimulationConfig
from repro.analysis import Oracle
from repro.harness.report import Table
from repro.workloads import build_ring_cycle


def run_variant(defer, n_cycles, defer_delay=2.0, seed=4):
    gc = GcConfig(
        defer_messages=defer,
        defer_delay=defer_delay,
        max_traces_per_trigger_check=n_cycles,
    )
    sim = Simulation(SimulationConfig(seed=seed, gc=gc))
    sim.add_sites(["a", "b"], auto_gc=False)
    workloads = [build_ring_cycle(sim, ["a", "b"]) for _ in range(n_cycles)]
    oracle = Oracle(sim)
    for _ in range(2):
        sim.run_gc_round()
    for workload in workloads:
        workload.make_garbage(sim)
    rounds = None
    for round_number in range(1, 81):
        sim.run_gc_round()
        oracle.check_safety()
        if not oracle.garbage_set():
            rounds = round_number
            break
    assert rounds is not None
    return {
        "physical": sim.metrics.count("messages.total"),
        "units": sim.metrics.count("messages.units"),
        "bundles": sim.metrics.count("messages.Bundle"),
        "piggybacked": sim.metrics.count("deferral.piggybacked"),
        "rounds": rounds,
    }


def test_e10_deferral_sweep(benchmark, record_table):
    def run():
        rows = []
        for n_cycles in (2, 4, 8, 16):
            plain = run_variant(False, n_cycles)
            deferred = run_variant(True, n_cycles)
            rows.append((n_cycles, plain, deferred))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = Table(
        "E10: deferral/piggybacking on N parallel 2-site cycles",
        [
            "cycles",
            "plain msgs",
            "deferred msgs",
            "saved",
            "bundles",
            "plain rounds",
            "deferred rounds",
        ],
    )
    for n_cycles, plain, deferred in rows:
        table.add_row(
            n_cycles,
            plain["physical"],
            deferred["physical"],
            plain["physical"] - deferred["physical"],
            deferred["bundles"],
            plain["rounds"],
            deferred["rounds"],
        )
        assert deferred["physical"] < plain["physical"]
        assert deferred["rounds"] <= plain["rounds"] + 2
    record_table("e10_deferral", table)
    # Savings grow with concurrency (more same-destination clustering).
    saved = [plain["physical"] - deferred["physical"] for _, plain, deferred in rows]
    assert saved[-1] > saved[0]


@pytest.mark.parametrize("defer", [False, True])
def test_e10_wall_time(benchmark, defer):
    stats = benchmark.pedantic(
        run_variant, args=(defer, 8), rounds=1, iterations=1
    )
    assert stats["rounds"] is not None
