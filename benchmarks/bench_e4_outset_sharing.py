"""E4 -- Canonical outsets and memoized unions (paper section 5.2).

Claims:

- suspects with equal outsets share one stored copy, and on well-clustered
  heaps there are far fewer distinct outsets than suspected objects (chains
  and strongly connected components share);
- memoized unions make repeated unions O(1), so total union work stays
  near-linear;
- retained inset/outset storage is bounded by O(n_i * n_o) and is usually
  far below it.
"""

import random

import pytest

from repro.core.backinfo import TraceEnvironment, compute_outsets_bottom_up
from repro.core.backinfo.outsets import OutsetStore
from repro.harness.report import Table
from repro.ids import ObjectId
from repro.store.heap import Heap


def build_clustered_heap(n_chains, chain_length, n_outrefs, seed=0):
    """Clustered heap: chains of local objects, few distinct remote refs."""
    rng = random.Random(seed)
    heap = Heap("Q")
    remotes = [ObjectId("P", i) for i in range(n_outrefs)]
    roots = []
    for _ in range(n_chains):
        chain = [heap.alloc() for _ in range(chain_length)]
        for left, right in zip(chain, chain[1:]):
            left.add_ref(right.oid)
        # The chain tail points at 1-2 remote refs.
        chain[-1].add_ref(rng.choice(remotes))
        if rng.random() < 0.5:
            chain[-1].add_ref(rng.choice(remotes))
        # Some chains merge into others (sharing).
        if roots and rng.random() < 0.6:
            heap.get(rng.choice(roots)).add_ref(chain[0].oid)
        roots.append(chain[0].oid)
    return heap, roots


def env_for(heap):
    return TraceEnvironment(
        heap=heap, clean_objects=set(), is_clean_outref=lambda ref: False
    )


def test_e4_sharing_series(benchmark, record_table):
    def run():
        rows = []
        for n_chains in (10, 25, 50, 100):
            heap, roots = build_clustered_heap(
                n_chains=n_chains, chain_length=20, n_outrefs=8
            )
            result = compute_outsets_bottom_up(env_for(heap), roots)
            suspects = result.objects_scanned
            worst_case_space = len(roots) * 8  # n_i * n_o
            actual_space = sum(len(outset) for outset in result.outsets.values())
            rows.append(
                (
                    n_chains,
                    suspects,
                    result.distinct_outsets,
                    result.unions_computed,
                    result.union_memo_hits,
                    actual_space,
                    worst_case_space,
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = Table(
        "E4: outset sharing on clustered heaps",
        [
            "suspected inrefs",
            "objects scanned",
            "distinct outsets",
            "unions computed",
            "memo hits",
            "inset storage",
            "n_i*n_o bound",
        ],
    )
    for row in rows:
        table.add_row(*row)
        # Far fewer distinct outsets than suspected objects.
        assert row[2] < row[1] / 4
        # Union work stays near-linear: computed unions bounded by scans.
        assert row[3] <= row[1] * 2
        # Storage within the paper's bound.
        assert row[5] <= row[6]
    record_table("e4_sharing", table)


def test_e4_memoization_speedup(benchmark, record_table):
    """Re-uniting the same pair costs O(1): measure hit ratio on a diamond
    lattice where every join re-unites previously united outsets."""

    def run():
        heap = Heap("Q")
        width, depth = 12, 12
        layers = [[heap.alloc() for _ in range(width)] for _ in range(depth)]
        for upper, lower in zip(layers, layers[1:]):
            for index, obj in enumerate(upper):
                obj.add_ref(lower[index].oid)
                obj.add_ref(lower[(index + 1) % width].oid)
        for index, obj in enumerate(layers[-1]):
            obj.add_ref(ObjectId("P", index % 4))
        roots = [obj.oid for obj in layers[0]]
        return compute_outsets_bottom_up(env_for(heap), roots)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    total = result.unions_computed + result.union_memo_hits
    table = Table(
        "E4 memoization: union operations on a diamond lattice",
        ["objects", "unions total", "computed", "memo hits", "hit ratio"],
    )
    table.add_row(
        result.objects_scanned,
        total,
        result.unions_computed,
        result.union_memo_hits,
        result.union_memo_hits / max(1, total),
    )
    record_table("e4_memoization", table)


@pytest.mark.parametrize("n_chains", [25, 100])
def test_e4_wall_time(benchmark, n_chains):
    heap, roots = build_clustered_heap(n_chains=n_chains, chain_length=20, n_outrefs=8)
    result = benchmark(lambda: compute_outsets_bottom_up(env_for(heap), roots))
    assert result.outsets


def test_e4_store_reuse_unit_costs(benchmark):
    """Micro-benchmark: memoized union lookups."""
    store = OutsetStore()
    ids = [
        store.intern(frozenset({ObjectId("P", i), ObjectId("P", i + 1)}))
        for i in range(50)
    ]
    # Prime the memo.
    for left in ids:
        for right in ids:
            store.union(left, right)

    def rerun():
        for left in ids:
            for right in ids:
                store.union(left, right)

    benchmark(rerun)
    assert store.union_memo_hits > store.unions_computed
