"""E22 -- Rival first-class backends: back tracing vs termination detection.

The two per-site backends behind the ``Collector`` boundary, head-to-head
on the E6 locality workload (a two-site garbage cycle inside an 8-site
system with live bystander structure): message count, message units, sites
involved, rounds to collection, and wall clock, healthy and with a crashed
bystander.

Expected shape: both backends share the locality property -- only the
cycle's sites appear in their protocol traffic, and a bystander crash stops
neither -- but they price a verdict differently.  One back trace spends
2E + (N-1) constant-size messages; one trial spends a mark wave, a rescue
wave, and per-phase credit acks, so more messages per round and target
lists instead of constant-size payloads.  The pinned numbers live in
``BENCH_collector_rivals.json``; the differential matrix (``python -m
repro diff``, EXPERIMENTS.md E22) guards the agreement side.
"""

import time

import pytest

from repro.harness.comparison import CYCLE_SITES, run_with_collector
from repro.harness.report import Table

RIVALS = ("backtrace", "termination")


def run_rival(name, crash_bystander=False):
    started = time.perf_counter()
    stats = run_with_collector(name, crash_bystander=crash_bystander)
    stats["wall_seconds"] = time.perf_counter() - started
    return stats


def run_comparison():
    return {
        name: {
            "healthy": run_rival(name),
            "crashed": run_rival(name, crash_bystander=True),
        }
        for name in RIVALS
    }


@pytest.mark.parametrize("name", RIVALS)
def test_rival_collects_cycle(benchmark, name):
    stats = benchmark.pedantic(run_rival, args=(name,), rounds=1, iterations=1)
    assert stats["collected"], f"{name} failed to collect the cycle"


def test_e22_rivals_table(benchmark, record_table):
    results = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    table = Table(
        "E22: rival backends on the E6 workload (2-site cycle, 8 sites)",
        [
            "backend",
            "rounds",
            "protocol msgs",
            "msg units",
            "sites involved",
            "collected",
            "collected w/ crash",
        ],
    )
    for name in RIVALS:
        healthy = results[name]["healthy"]
        crashed = results[name]["crashed"]
        table.add_row(
            name,
            healthy["rounds"] if healthy["rounds"] is not None else "-",
            healthy["messages"],
            healthy["units"],
            len(healthy["involved"]),
            "yes" if healthy["collected"] else "no",
            "yes" if crashed["collected"] else "NO",
        )
    record_table("e22_rivals", table)

    for name in RIVALS:
        healthy = results[name]["healthy"]
        crashed = results[name]["crashed"]
        # Both backends collect, with or without the crashed bystander, and
        # both have the locality property: protocol traffic only ever
        # touches the cycle's own sites.
        assert healthy["collected"] and crashed["collected"], name
        assert set(healthy["involved"]) == set(CYCLE_SITES), name

    bt = results["backtrace"]["healthy"]
    tm = results["termination"]["healthy"]
    # The paper's 2E + (N-1) constant-size messages (E=2, N=2 here).
    assert bt["messages"] == 5 and bt["units"] == bt["messages"]
    # A trial is chattier: mark + rescue waves plus per-phase credit acks.
    assert tm["messages"] > bt["messages"]
    # Mark/rescue fan-out carries target lists, so units can exceed the
    # message count but must stay far from migration's object-sized cost.
    assert tm["units"] >= tm["messages"]
    assert tm["units"] <= 4 * tm["messages"]


if __name__ == "__main__":
    # Standalone mode: emit the comparison as JSON so the repo can pin the
    # headline numbers (see BENCH_collector_rivals.json).
    import json
    import sys

    try:
        from .hostinfo import host_header
    except ImportError:
        from hostinfo import host_header

    stats = run_comparison()
    results = {"host": host_header()}
    for name in RIVALS:
        results[name] = stats[name]
    bt = stats["backtrace"]["healthy"]
    tm = stats["termination"]["healthy"]
    results["message_ratio_termination_over_backtrace"] = (
        tm["messages"] / bt["messages"]
    )
    results["unit_ratio_termination_over_backtrace"] = tm["units"] / bt["units"]
    results["locality_holds_for_both"] = all(
        set(stats[name]["healthy"]["involved"]) == set(CYCLE_SITES)
        for name in RIVALS
    )
    json.dump(results, sys.stdout, indent=2)
    print()
