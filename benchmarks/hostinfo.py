"""Host provenance header shared by every pinned-JSON bench writer.

Wall-clock numbers are only interpretable next to the host that produced
them: a 1-core container cannot show parallel speedup, and a numpy-free
install runs the flat kernel instead of the vectorized one.  Every
``BENCH_*.json`` embeds this header so the pinned numbers stay honest.
"""

from __future__ import annotations

import multiprocessing
import os
import platform
from typing import Any, Dict


def host_header() -> Dict[str, Any]:
    try:
        import numpy
    except ImportError:
        numpy_version = None
    else:
        numpy_version = numpy.__version__
    return {
        "cpus": os.cpu_count(),
        "start_method": (
            "fork"
            if "fork" in multiprocessing.get_all_start_methods()
            else multiprocessing.get_start_method(allow_none=True)
        ),
        "numpy": numpy_version,
        "python": platform.python_version(),
    }
