"""Host provenance header shared by every pinned-JSON bench writer.

Wall-clock numbers are only interpretable next to the host that produced
them: a 1-core container cannot show parallel speedup, and a numpy-free
install runs the flat kernel instead of the vectorized one.  Every
``BENCH_*.json`` embeds this header so the pinned numbers stay honest.
"""

from __future__ import annotations

import multiprocessing
import os
import platform
from typing import Any, Dict


def host_header() -> Dict[str, Any]:
    try:
        import numpy
    except ImportError:
        numpy_version = None
    else:
        numpy_version = numpy.__version__
    # Load average and CPU affinity make 1-core vs multi-core (and busy vs
    # idle) hosts self-describing: a "no speedup" number next to
    # cpus_available=1 or load_avg_1m=8.0 explains itself.  Both are
    # best-effort -- absent on platforms without the syscalls.
    try:
        load_1m, load_5m, load_15m = os.getloadavg()
        load_avg = {"1m": load_1m, "5m": load_5m, "15m": load_15m}
    except (AttributeError, OSError):
        load_avg = None
    try:
        affinity = sorted(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        affinity = None
    return {
        "cpus": os.cpu_count(),
        "cpus_available": len(affinity) if affinity is not None else None,
        "cpu_affinity": affinity,
        "load_avg": load_avg,
        "start_method": (
            "fork"
            if "fork" in multiprocessing.get_all_start_methods()
            else multiprocessing.get_start_method(allow_none=True)
        ),
        "numpy": numpy_version,
        "python": platform.python_version(),
    }
