"""E21 (extension) -- Coordinator-free data path: rings + delta exports.

PR-8 moves cross-shard records out of the coordinator pipes into
per-ordered-pair SPSC rings in shared memory (``direct_rings``), fuses
dispatch/drain/route/absorb into one round trip per window, and makes the
control plane delta-based (``delta_exports``).  Four claims, measured
separately on the e20-shaped steady-state workload (churn burst, then a
quiet periodic-GC tail) at 4 workers:

1. **Pipe payload bytes per window** -- the headline.  With rings on, the
   coordinator pipes carry command/reply framing plus 24-byte trailers and
   ring cursors; record payloads ride shared memory.  Pipe-routed payload
   bytes per window must drop >= 5x vs the rings-off baseline (byte counts
   are deterministic, so this is NOT cpu-gated).  Total pipe bytes are
   recorded for honesty -- framing remains, so the total drops less.
2. **One round trip per window** -- the fused protocol sends exactly one
   command per worker per synchronization point:
   ``commands_sent == (windows + aligns + broadcasts) * W + site_calls``.
   Host-independent, asserted on both data paths.
3. **Delta control plane** -- a steady-state poll loop (advance, snapshot,
   merged metrics, repeated) must move >= 3x fewer pipe bytes with
   ``delta_exports`` than with full re-exports.
4. **Wall clock** -- sequential vs 4 ring-fed workers; >= 1.3x is asserted
   only with >= 4 cores (the JSON records whatever the host produced).

Every run is twinned: rings on, rings off, full exports, numpy-free
(when numpy is importable at all), and the sequential engine must all
produce the identical final snapshot.
"""

import os
import time

import pytest

from repro import GcConfig, NetworkConfig, Simulation, SimulationConfig
from repro.harness.report import Table
from repro.workloads import ChurnConfig, SiteChurn

try:  # package-relative when imported by pytest, flat when run standalone
    from .hostinfo import host_header
except ImportError:  # pragma: no cover
    from hostinfo import host_header

N_SITES = 16
WORKERS = 4
DURATION = 3000.0
CHURN_UNTIL = 300.0
NETWORK = dict(min_latency=8.0, max_latency=24.0, pair_rng_streams=True)
GC = dict(
    local_trace_period=150.0,
    local_trace_period_jitter=30.0,
    full_trace_every_n=16,
    full_update_period=8,
)
#: Steady-state poll loop for the delta-exports claim: advance a little,
#: then read both exports, repeatedly -- the monitoring access pattern.
POLL_ROUNDS = 8
POLL_STEP = 50.0
PAYLOAD_DROP_FLOOR = 5.0
DELTA_TRAFFIC_FLOOR = 3.0
SPEEDUP_FLOOR = 1.3


def _build(workers, duration, seed, direct_rings=None, delta_exports=True):
    config = SimulationConfig(
        seed=seed,
        network=NetworkConfig(**NETWORK),
        gc=GcConfig(**GC),
        parallel_workers=workers,
        **({} if direct_rings is None else {"direct_rings": direct_rings}),
        delta_exports=delta_exports,
    )
    sim = Simulation.create(config)
    sites = [f"s{i:03d}" for i in range(N_SITES)]
    sim.add_sites(sites, auto_gc=True)
    churn = SiteChurn(sim, sites, ChurnConfig(mean_interval=7.0))
    churn.start(until=CHURN_UNTIL)
    return sim


def run_mode(
    direct_rings,
    workers=WORKERS,
    duration=DURATION,
    delta_exports=True,
    seed=7,
):
    """One run; coordination stats captured before the poll loop so the
    per-window numbers describe the data path, not the monitoring."""
    sim = _build(workers, duration, seed, direct_rings, delta_exports)
    started = time.perf_counter()
    fired = sim.run_until(duration)
    wall_seconds = time.perf_counter() - started
    row = {
        "workers": workers,
        "events": fired,
        "wall_seconds": wall_seconds,
    }
    if getattr(sim, "parallel_active", False):
        stats = sim.coordination_stats()
        before_poll = stats["bytes_sent"] + stats["bytes_recv"]
        for _ in range(POLL_ROUNDS):
            sim.run_for(POLL_STEP)
            sim.snapshot()
            sim.merged_metrics()
        polled = sim.coordination_stats()
        windows = max(1, stats["windows"])
        row.update(
            direct_rings=stats["direct_rings"],
            delta_exports=stats["delta_exports"],
            windows=stats["windows"],
            aligns=stats["aligns"],
            broadcasts=stats["broadcasts"],
            site_calls=stats["site_calls"],
            commands_sent=stats["commands_sent"],
            one_round_trip_per_window=(
                stats["commands_sent"]
                == (stats["windows"] + stats["aligns"] + stats["broadcasts"])
                * workers
                + stats["site_calls"]
            ),
            cross_shard_messages=stats["cross_shard_messages"],
            ring_messages=stats["ring_messages"],
            ring_bytes=stats["ring_bytes"],
            ring_spills=stats["ring_spills"],
            payload_conservation=(
                stats["cross_shard_messages"]
                == stats["ring_messages"]
                + stats["payloads_packed"]
                + stats["payloads_pickled"]
            ),
            pipe_payload_bytes=stats["payload_bytes"],
            pipe_payload_bytes_per_window=stats["payload_bytes"] / windows,
            pipe_bytes_total=before_poll,
            pipe_bytes_per_window=before_poll / windows,
            poll_pipe_bytes=(
                polled["bytes_sent"] + polled["bytes_recv"] - before_poll
            ),
        )
        row["snapshot"] = sim.snapshot()
        sim.close()
    else:
        from repro.analysis.export import graph_snapshot

        for _ in range(POLL_ROUNDS):
            sim.run_for(POLL_STEP)
        row["snapshot"] = graph_snapshot(sim)
    return row


def _run_numpy_free(duration, seed=7):
    """A rings-on run with the numpy-dependent kernels masked off.

    Patching before the fork makes every worker inherit the numpy-free
    view, as in the equivalence suite; the twin is skipped entirely (None)
    when numpy was never importable -- then every run is numpy-free anyway.
    """
    import repro.core.distance as distance_mod
    import repro.store.heap as heap_mod

    if distance_mod.np is None:
        return None
    saved = (distance_mod.np, heap_mod.np)
    distance_mod.np = heap_mod.np = None
    try:
        return run_mode(True, duration=duration, seed=seed)
    finally:
        distance_mod.np, heap_mod.np = saved


def run_comparison(duration=DURATION):
    """Rings on/off, delta/full exports, numpy-free, and the sequential twin."""
    rings_on = run_mode(True, duration=duration)
    rings_off = run_mode(False, duration=duration)
    full_exports = run_mode(True, duration=duration, delta_exports=False)
    sequential = run_mode(None, workers=1, duration=duration)
    numpy_free = _run_numpy_free(duration)

    rows = [rings_on, rings_off, full_exports, sequential] + (
        [numpy_free] if numpy_free is not None else []
    )
    snapshots = [row.pop("snapshot") for row in rows]
    on_payload = rings_on["pipe_payload_bytes_per_window"]
    off_payload = rings_off["pipe_payload_bytes_per_window"]
    results = {
        "sites": N_SITES,
        "workers": WORKERS,
        "duration": duration,
        "churn_until": CHURN_UNTIL,
        "poll_rounds": POLL_ROUNDS,
        "snapshots_identical": all(s == snapshots[0] for s in snapshots),
        "numpy_twin_ran": numpy_free is not None,
        "rings_on": rings_on,
        "rings_off": rings_off,
        "full_exports": full_exports,
        "sequential": sequential,
    }
    if numpy_free is not None:
        results["numpy_free"] = numpy_free
    # Rings routinely take the pipe payload to zero (nothing spilled), so
    # the ratio degenerates like e19's pickled drop: None means "nothing
    # left to divide by", which trivially satisfies the floor.
    results["pipe_payload_drop"] = (
        off_payload / on_payload if on_payload > 0 else None
    )
    results["pipe_payload_drop_at_least_5x"] = (
        on_payload == 0
        or results["pipe_payload_drop"] >= PAYLOAD_DROP_FLOOR
    )
    results["pipe_bytes_drop"] = rings_off["pipe_bytes_per_window"] / max(
        1.0, rings_on["pipe_bytes_per_window"]
    )
    results["delta_poll_traffic_drop"] = full_exports["poll_pipe_bytes"] / max(
        1, rings_on["poll_pipe_bytes"]
    )
    results["delta_poll_drop_at_least_3x"] = (
        results["delta_poll_traffic_drop"] >= DELTA_TRAFFIC_FLOOR
    )
    if rings_on["wall_seconds"] > 0:
        results["speedup_4x"] = (
            sequential["wall_seconds"] / rings_on["wall_seconds"]
        )
    return results


# -- pytest entry points -----------------------------------------------------


def test_e21_direct_rings(benchmark, record_table):
    """CI-sized run; every deterministic claim asserted, wall clock gated."""

    def run():
        return run_comparison(duration=1000.0)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    table = Table(
        "E21: coordinator-free data path "
        f"({N_SITES} sites, {WORKERS} workers)",
        ["mode", "windows", "ring msgs", "payload B/win", "pipe B/win", "poll B"],
    )
    for key in ("rings_on", "rings_off"):
        row = results[key]
        table.add_row(
            key,
            row["windows"],
            row["ring_messages"],
            f"{row['pipe_payload_bytes_per_window']:.1f}",
            f"{row['pipe_bytes_per_window']:.0f}",
            row["poll_pipe_bytes"],
        )
    record_table("e21_direct_rings", table)

    assert results["snapshots_identical"]
    assert results["rings_on"]["events"] == results["rings_off"]["events"]
    assert results["pipe_payload_drop_at_least_5x"], results["pipe_payload_drop"]
    assert results["delta_poll_drop_at_least_3x"], results[
        "delta_poll_traffic_drop"
    ]
    for key in ("rings_on", "rings_off", "full_exports"):
        assert results[key]["one_round_trip_per_window"], key
        assert results[key]["payload_conservation"], key
    assert results["rings_on"]["ring_messages"] > 0
    # The rings-off baseline stays pure, and both paths routed the same
    # messages -- only the carrier changed.
    assert results["rings_off"]["ring_messages"] == 0
    assert (
        results["rings_on"]["cross_shard_messages"]
        == results["rings_off"]["cross_shard_messages"]
    )


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4,
    reason="speedup needs >= 4 physical cores; byte counts are measured above",
)
def test_e21_speedup_at_4_workers(benchmark):
    results = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    assert results["snapshots_identical"]
    assert results["speedup_4x"] >= SPEEDUP_FLOOR


if __name__ == "__main__":
    # Standalone mode: emit the comparison as JSON (the combined
    # BENCH_parallel_sim.json is regenerated by bench_e19_persistent_pool,
    # which embeds this module's segment).  Deterministic claims gate the
    # exit code; the wall-clock speedup additionally gates when the host
    # has the cores to show it.
    import json
    import sys

    smoke = "--smoke" in sys.argv
    results = run_comparison(duration=1000.0 if smoke else DURATION)
    results["smoke"] = smoke
    results["host"] = host_header()
    json.dump(results, sys.stdout, indent=2)
    print()
    ok = (
        results["snapshots_identical"]
        and results["pipe_payload_drop_at_least_5x"]
        and results["delta_poll_drop_at_least_3x"]
        and results["rings_on"]["one_round_trip_per_window"]
        and results["rings_off"]["one_round_trip_per_window"]
        and results["rings_on"]["payload_conservation"]
        and results["rings_on"]["ring_messages"] > 0
    )
    if (os.cpu_count() or 1) >= 4:
        ok = ok and results.get("speedup_4x", 0.0) >= SPEEDUP_FLOOR
    if not ok:
        sys.exit(1)
