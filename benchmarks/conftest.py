"""Shared benchmark helpers.

Every benchmark prints the table its experiment reproduces *and* writes it to
``benchmarks/out/<name>.txt`` so the numbers survive pytest's stdout capture
(EXPERIMENTS.md points at these files).  Each name maps to one file,
overwritten on every run.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.harness.report import Table

OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture
def record_table():
    """Save + print an experiment table."""

    def _record(name: str, table: Table) -> None:
        OUT_DIR.mkdir(exist_ok=True)
        rendered = table.render()
        (OUT_DIR / f"{name}.txt").write_text(rendered + "\n")
        print()
        print(rendered)

    return _record
