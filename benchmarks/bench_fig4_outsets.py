"""F4 -- Figure 4: plain tracing does not compute full reachability.

The figure: inrefs a and b at site Q share object z; a naive single-visit
trace from a stops the later trace from b at z, so b's outset would miss the
outref c -- and the back edge z -> x -> y makes {y, z, x} one strongly
connected component whose members must share one outset.  Both section-5
algorithms get this right; a deliberately naive single-visit trace (shown
here as the counterfactual) gets it wrong.
"""

import pytest

from repro.core.backinfo import (
    TraceEnvironment,
    compute_outsets_bottom_up,
    compute_outsets_independent,
)
from repro.harness.report import Table
from repro.ids import ObjectId
from repro.store.heap import Heap


def build_figure4_heap():
    """Site Q of Figure 4: a -> z; b -> y; y -> z, y -> d; z -> x; x -> y, x -> c."""
    heap = Heap("Q")
    a, b, x, y, z = (heap.alloc() for _ in range(5))
    c = ObjectId("P", 0)
    d = ObjectId("R", 0)
    a.add_ref(z.oid)
    b.add_ref(y.oid)
    y.add_ref(z.oid)
    y.add_ref(d)
    z.add_ref(x.oid)
    x.add_ref(y.oid)
    x.add_ref(c)
    return heap, {"a": a.oid, "b": b.oid, "x": x.oid, "y": y.oid, "z": z.oid, "c": c, "d": d}


def naive_single_visit_outsets(heap, roots):
    """The broken first cut from section 5.2 (no SCC handling, global marks)."""
    outsets = {}
    marked = set()

    def trace(oid):
        if oid in marked:
            return outsets.get(oid, frozenset())
        marked.add(oid)
        collected = set()
        for ref in heap.get(oid).iter_refs():
            if ref.site != "Q":
                collected.add(ref)
            elif heap.contains(ref):
                collected |= trace(ref)
        outsets[oid] = frozenset(collected)
        return outsets[oid]

    return {root: trace(root) for root in roots}


def env_for(heap):
    return TraceEnvironment(
        heap=heap, clean_objects=set(), is_clean_outref=lambda ref: False
    )


def test_fig4_scc_outsets(benchmark, record_table):
    def run():
        heap, names = build_figure4_heap()
        roots = [names["a"], names["b"]]
        naive = naive_single_visit_outsets(heap, roots)
        bottom_up = compute_outsets_bottom_up(env_for(heap), roots)
        independent = compute_outsets_independent(env_for(heap), roots)
        return names, naive, bottom_up, independent

    names, naive, bottom_up, independent = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    full = {names["c"], names["d"]}

    def show(outset):
        label = {names["c"]: "c", names["d"]: "d"}
        return "{" + ",".join(sorted(label[x] for x in outset)) + "}"

    table = Table(
        "F4 (Figure 4): outset of each inref by algorithm (correct = {c,d})",
        ["inref", "naive single-visit", "independent (5.1)", "bottom-up (5.2)"],
    )
    for key in ("a", "b"):
        table.add_row(
            key,
            show(naive[names[key]]),
            show(independent.outsets[names[key]]),
            show(bottom_up.outsets[names[key]]),
        )
    record_table("fig4_outsets", table)

    # The naive trace misses an outref on at least one inref (the figure's
    # point), while both real algorithms are exact and agree.
    assert any(naive[names[key]] != full for key in ("a", "b"))
    assert bottom_up.outsets[names["a"]] == full
    assert bottom_up.outsets[names["b"]] == full
    assert independent.outsets == bottom_up.outsets
    # SCC members share one outset object identity-wise in the store.
    assert bottom_up.outsets[names["a"]] == bottom_up.outsets[names["b"]]
