"""F5 -- Figure 5: reference mutations and the transfer barrier.

The mutation of the figure -- copy a reference to z into y after traversing
the old path, then delete an edge of the old path -- is replayed twice: with
the transfer barrier enabled (the paper's system: everything stays safe) and
disabled (the counterfactual: a back trace with stale insets confirms a live
inref as garbage and a live object is lost).
"""

import pytest

from repro import GcConfig
from repro.analysis import Oracle
from repro.errors import OracleError
from repro.harness.report import Table

from tests.integration.test_barrier_safety import (
    build_race_topology,
    prepare_stale_suspicion,
    run_mutation_then_trace,
)


def run_variant(barrier_enabled):
    gc = GcConfig(enable_transfer_barrier=barrier_enabled)
    sim, b = build_race_topology(gc)
    prepare_stale_suspicion(sim, b)
    run_mutation_then_trace(sim, b)
    g_alive = sim.site("P").heap.contains(b["g"])
    z_alive = sim.site("Q").heap.contains(b["z"])
    try:
        Oracle(sim).check_safety()
        safe = True
    except OracleError:
        safe = False
    barriers = sim.metrics.count("barrier.transfer_applied")
    clean_hits = sim.metrics.count("backtrace.clean_rule_hits")
    return {
        "g_alive": g_alive,
        "z_alive": z_alive,
        "safe": safe,
        "barriers": barriers,
        "clean_rule_hits": clean_hits,
    }


def test_fig5_barrier_on_vs_off(benchmark, record_table):
    def run():
        return run_variant(True), run_variant(False)

    with_barrier, without_barrier = benchmark.pedantic(run, rounds=1, iterations=1)
    table = Table(
        "F5 (Figure 5): the same mutation schedule with and without the transfer barrier",
        ["variant", "barriers fired", "live g survives", "live z survives", "safe"],
    )
    table.add_row(
        "barrier ON (paper)",
        with_barrier["barriers"],
        "yes" if with_barrier["g_alive"] else "NO",
        "yes" if with_barrier["z_alive"] else "NO",
        "yes" if with_barrier["safe"] else "NO",
    )
    table.add_row(
        "barrier OFF (counterfactual)",
        without_barrier["barriers"],
        "yes" if without_barrier["g_alive"] else "NO",
        "yes" if without_barrier["z_alive"] else "NO",
        "yes" if without_barrier["safe"] else "NO",
    )
    record_table("fig5_barrier", table)
    assert with_barrier["safe"] and with_barrier["g_alive"] and with_barrier["z_alive"]
    assert not without_barrier["safe"] and not without_barrier["g_alive"]
    assert with_barrier["barriers"] >= 1
