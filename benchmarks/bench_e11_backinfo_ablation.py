"""E11 (ablation) -- backinfo algorithm choice inside the full system.

E3 measured the two section-5 algorithms in isolation; this ablation swaps
them under the complete collector (GcConfig.backinfo_algorithm) on a
hypertext workload with heavy sharing, confirming that the in-system
behaviour matches: identical collection outcomes, with the independent
algorithm paying multiplied suspected-object scans.
"""

import pytest

from repro import GcConfig, Simulation, SimulationConfig
from repro.analysis import Oracle
from repro.harness.report import Table
from repro.workloads import build_hypertext_web

SITES = ["w0", "w1", "w2"]


def run_system(algorithm, seed=5):
    gc = GcConfig(backinfo_algorithm=algorithm, suspicion_threshold=2)
    sim = Simulation(SimulationConfig(seed=seed, gc=gc))
    sim.add_sites(SITES, auto_gc=False)
    web = build_hypertext_web(
        sim, SITES, documents_per_site=4, sections_per_document=4,
        citations_per_document=2, back_link_probability=0.8,
        catalog_fraction=1.0, seed=seed,
    )
    oracle = Oracle(sim)
    for _ in range(2):
        sim.run_gc_round()
    for index in list(web.catalog_entries):
        web.unlink_from_catalog(sim, index)
    rounds = None
    for round_number in range(1, 60):
        sim.run_gc_round()
        oracle.check_safety()
        if not oracle.garbage_set():
            rounds = round_number
            break
    assert rounds is not None
    return {
        "rounds": rounds,
        "suspect_scans": sim.metrics.count("gc.suspected_objects_scanned"),
        "clean_scans": sim.metrics.count("gc.clean_objects_scanned"),
        "swept": sim.metrics.count("gc.objects_swept"),
        "memo_hits": sim.metrics.count("backinfo.union_memo_hits"),
    }


def test_e11_in_system_ablation(benchmark, record_table):
    def run():
        return run_system("bottomup"), run_system("independent")

    bottom_up, independent = benchmark.pedantic(run, rounds=1, iterations=1)
    table = Table(
        "E11: backinfo algorithm inside the full collector (hypertext leak)",
        ["algorithm", "rounds to clean", "suspected scans", "objects swept"],
    )
    table.add_row("bottom-up (5.2)", bottom_up["rounds"], bottom_up["suspect_scans"], bottom_up["swept"])
    table.add_row("independent (5.1)", independent["rounds"], independent["suspect_scans"], independent["swept"])
    record_table("e11_backinfo_ablation", table)
    # Identical collection behaviour...
    assert bottom_up["rounds"] == independent["rounds"]
    assert bottom_up["swept"] == independent["swept"]
    # ...at a lower (or equal) scan cost for the single-pass algorithm.
    assert bottom_up["suspect_scans"] <= independent["suspect_scans"]


@pytest.mark.parametrize("algorithm", ["bottomup", "independent"])
def test_e11_wall_time(benchmark, algorithm):
    stats = benchmark.pedantic(run_system, args=(algorithm,), rounds=1, iterations=1)
    assert stats["rounds"] is not None
