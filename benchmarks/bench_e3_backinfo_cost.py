"""E3 -- Cost of computing back information (paper section 5).

Claim: independent tracing from each suspected inref costs
O(n_i * (n + e)) object scans because shared structure is retraced once per
inref, while the bottom-up algorithm (Tarjan + memoized unions) scans every
object exactly once, O(n + e).  Both produce identical outsets.

The bench sweeps three structure shapes -- shared chains (worst case for
retracing), strongly connected components, and random DAGs -- and reports
object-scan counts plus wall time for both algorithms.
"""

import random

import pytest

from repro.core.backinfo import (
    TraceEnvironment,
    compute_outsets_bottom_up,
    compute_outsets_independent,
)
from repro.harness.report import Table
from repro.ids import ObjectId
from repro.store.heap import Heap


def env_for(heap):
    return TraceEnvironment(
        heap=heap, clean_objects=set(), is_clean_outref=lambda ref: False
    )


def build_shared_chain(n_heads, chain_length):
    """n_heads suspected inrefs all feeding one long shared chain."""
    heap = Heap("Q")
    chain = [heap.alloc() for _ in range(chain_length)]
    for left, right in zip(chain, chain[1:]):
        left.add_ref(right.oid)
    chain[-1].add_ref(ObjectId("P", 0))
    heads = [heap.alloc() for _ in range(n_heads)]
    for head in heads:
        head.add_ref(chain[0].oid)
    return heap, [head.oid for head in heads]


def build_scc_ring(n_heads, ring_length):
    heap = Heap("Q")
    ring = [heap.alloc() for _ in range(ring_length)]
    for left, right in zip(ring, ring[1:] + ring[:1]):
        left.add_ref(right.oid)
    ring[ring_length // 2].add_ref(ObjectId("P", 0))
    heads = [heap.alloc() for _ in range(n_heads)]
    for index, head in enumerate(heads):
        head.add_ref(ring[index % ring_length].oid)
    return heap, [head.oid for head in heads]


def build_random_dag(n_objects, out_degree, n_roots, seed=0):
    rng = random.Random(seed)
    heap = Heap("Q")
    objects = [heap.alloc() for _ in range(n_objects)]
    for index, obj in enumerate(objects):
        for _ in range(out_degree):
            if index + 1 < n_objects:
                obj.add_ref(objects[rng.randrange(index + 1, n_objects)].oid)
        if rng.random() < 0.1:
            obj.add_ref(ObjectId("P", rng.randrange(5)))
    roots = [obj.oid for obj in rng.sample(objects[: n_objects // 2], n_roots)]
    return heap, roots


SHAPES = {
    "shared-chain": lambda scale: build_shared_chain(n_heads=scale, chain_length=200),
    "scc-ring": lambda scale: build_scc_ring(n_heads=scale, ring_length=200),
    "random-dag": lambda scale: build_random_dag(
        n_objects=400, out_degree=2, n_roots=scale
    ),
}


@pytest.mark.parametrize("shape", sorted(SHAPES))
@pytest.mark.parametrize("algorithm_name", ["bottomup", "independent"])
def test_backinfo_wall_time(benchmark, shape, algorithm_name):
    heap, roots = SHAPES[shape](scale=20)
    algorithm = (
        compute_outsets_bottom_up
        if algorithm_name == "bottomup"
        else compute_outsets_independent
    )
    result = benchmark(lambda: algorithm(env_for(heap), roots))
    assert result.outsets


def test_e3_scan_count_series(benchmark, record_table):
    def run():
        rows = []
        for shape_name, build in sorted(SHAPES.items()):
            for scale in (5, 10, 20, 40):
                heap, roots = build(scale)
                bottom_up = compute_outsets_bottom_up(env_for(heap), roots)
                independent = compute_outsets_independent(env_for(heap), roots)
                assert bottom_up.outsets == independent.outsets
                rows.append(
                    (
                        shape_name,
                        scale,
                        len(heap),
                        bottom_up.objects_scanned,
                        independent.objects_scanned,
                        independent.objects_scanned
                        / max(1, bottom_up.objects_scanned),
                    )
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = Table(
        "E3: object scans, bottom-up (single pass) vs independent (retraces)",
        ["shape", "suspected inrefs", "objects", "bottom-up scans", "independent scans", "blow-up"],
    )
    for row in rows:
        table.add_row(*row)
    record_table("e3_scan_counts", table)
    # The headline claim: on shared structure the independent algorithm's
    # scan count grows with n_i while bottom-up's stays flat.
    chain_rows = [row for row in rows if row[0] == "shared-chain"]
    assert chain_rows[-1][3] == chain_rows[0][3] + (40 - 5)  # only heads differ
    assert chain_rows[-1][4] > 4 * chain_rows[0][4] / 2  # grows ~linearly in n_i
