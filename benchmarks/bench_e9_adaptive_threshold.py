"""E9 (extension) -- Adaptive suspicion-threshold tuning (paper section 3).

The paper: "The outcome of this technique may be used to tune the suspicion
threshold.  For example, if too many suspects are found live, the threshold
should be increased."  This ablation runs a workload of recurring *live*
long chains (which a low fixed threshold keeps suspecting, paying abortive
back traces and inset computation) with tuning on and off, and checks that
garbage cycles are still collected under the raised thresholds.
"""

import pytest

from repro import GcConfig, Simulation, SimulationConfig
from repro.analysis import Oracle
from repro.harness.report import Table
from repro.workloads import GraphBuilder, build_ring_cycle


def run_variant(tuning_enabled, generations=6, seed=3):
    gc = GcConfig(
        suspicion_threshold=2,
        assumed_cycle_length=1,
        enable_threshold_tuning=tuning_enabled,
    )
    sites = [f"s{i}" for i in range(6)]
    sim = Simulation(SimulationConfig(seed=seed, gc=gc))
    sim.add_sites(sites, auto_gc=False)
    b = GraphBuilder(sim)
    root = b.obj("s0", root=True)
    previous_head = None
    for _ in range(generations):
        members = [b.obj(site) for site in sites[1:]]
        sim.site("s0").mutator_add_ref(root, members[0])
        for left, right in zip(members, members[1:]):
            b.link(left, right)
        if previous_head is not None:
            sim.site("s0").mutator_remove_ref(root, previous_head)
        previous_head = members[0]
        for _ in range(6):
            sim.run_gc_round()
    # A garbage ring at the end: completeness must survive tuning.
    ring = build_ring_cycle(sim, sites)
    for _ in range(2):
        sim.run_gc_round()
    ring.make_garbage(sim)
    oracle = Oracle(sim)
    collected_in = None
    for round_number in range(1, 120):
        sim.run_gc_round()
        oracle.check_safety()
        if not oracle.garbage_set():
            collected_in = round_number
            break
    return {
        "abortive": sim.metrics.count("backtrace.completed_live"),
        "suspect_scans": sim.metrics.count("gc.suspected_objects_scanned"),
        "raises": sim.metrics.count("tuning.threshold_raised"),
        "max_threshold": max(
            site.inrefs.suspicion_threshold for site in sim.sites.values()
        ),
        "ring_collected_in": collected_in,
    }


def test_e9_tuning_ablation(benchmark, record_table):
    def run():
        return run_variant(False), run_variant(True)

    untuned, tuned = benchmark.pedantic(run, rounds=1, iterations=1)
    table = Table(
        "E9: adaptive threshold tuning on recurring live chains (+ final garbage ring)",
        [
            "variant",
            "abortive (Live) traces",
            "suspected-object scans",
            "threshold raises",
            "max threshold",
            "ring collected in (rounds)",
        ],
    )
    table.add_row(
        "fixed T=2",
        untuned["abortive"],
        untuned["suspect_scans"],
        untuned["raises"],
        untuned["max_threshold"],
        untuned["ring_collected_in"],
    )
    table.add_row(
        "tuned (floor 2)",
        tuned["abortive"],
        tuned["suspect_scans"],
        tuned["raises"],
        tuned["max_threshold"],
        tuned["ring_collected_in"],
    )
    record_table("e9_tuning", table)
    assert tuned["raises"] >= 1
    assert tuned["abortive"] < untuned["abortive"]
    assert tuned["suspect_scans"] <= untuned["suspect_scans"]
    # Completeness preserved under raised thresholds.
    assert tuned["ring_collected_in"] is not None
    assert untuned["ring_collected_in"] is not None
