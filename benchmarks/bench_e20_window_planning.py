"""E20 (extension) -- Demand-driven window planning vs the fixed step.

The PR-6 coordinator planned every safe-time window as ``horizon +
min_latency``: sound, but blind.  A steady-state workload -- a burst of
churn followed by a long quiet tail of periodic GC ticks that provably send
nothing -- pays one coordination round trip per lookahead step forever.
The demand planner (``SimulationConfig.window_planner="demand"``) lets each
shard advertise its earliest output time, looks through provably-quiet
GC-tick chains, and jumps the whole quiet tail in one window.

Measured here, fixed vs demand on the same seed at 4 workers:

1. **Window count** -- the headline.  Window counts are a pure function of
   the event timeline and the planner (replies are drained in worker order;
   nothing is wall-clock-raced), so the >= 5x reduction is asserted
   deterministically and is NOT gated on host core count.
2. **Byte-identity** -- both planners, and the sequential engine, must
   produce the identical final snapshot: window boundaries decide how often
   the coordinator synchronizes, never what executes.
3. **Wall clock** -- recorded for honesty, never asserted: fewer round
   trips help even on one core, but by how much is host-dependent.
"""

import time

from repro import GcConfig, NetworkConfig, Simulation, SimulationConfig
from repro.harness.report import Table
from repro.workloads import ChurnConfig, SiteChurn

N_SITES = 16
WORKERS = 4
DURATION = 8000.0
#: Churn stops at this simulated time; the rest of the run is the quiet
#: tail of GC ticks that the demand planner collapses.
CHURN_UNTIL = 300.0
NETWORK = dict(min_latency=8.0, max_latency=24.0, pair_rng_streams=True)
#: A long full-trace cycle (16 incremental traces per full, full refresh
#: every 8 fulls) gives the quiet-tick predictor long provably-silent
#: chains to advertise.
GC = dict(
    local_trace_period=150.0,
    local_trace_period_jitter=30.0,
    full_trace_every_n=16,
    full_update_period=8,
)
REDUCTION_FLOOR = 5.0


def _build(planner, workers, n_sites, seed, churn_until):
    config = SimulationConfig(
        seed=seed,
        network=NetworkConfig(**NETWORK),
        gc=GcConfig(**GC),
        parallel_workers=workers,
        window_planner=planner,
    )
    sim = Simulation.create(config)
    sites = [f"s{i:03d}" for i in range(n_sites)]
    sim.add_sites(sites, auto_gc=True)
    churn = SiteChurn(sim, sites, ChurnConfig(mean_interval=7.0))
    churn.start(until=churn_until)
    return sim


def run_planner(
    planner,
    workers=WORKERS,
    n_sites=N_SITES,
    duration=DURATION,
    churn_until=CHURN_UNTIL,
    seed=7,
):
    """One run; returns wall time, coordination counters, and the snapshot."""
    sim = _build(planner, workers, n_sites, seed, churn_until)
    started = time.perf_counter()
    fired = sim.run_until(duration)
    wall_seconds = time.perf_counter() - started
    row = {
        "planner": planner,
        "workers": workers,
        "events": fired,
        "wall_seconds": wall_seconds,
    }
    if getattr(sim, "parallel_active", False):
        stats = sim.coordination_stats()
        windows = max(1, stats["windows"])
        row.update(
            windows=stats["windows"],
            eot_jumps=stats["eot_jumps"],
            quiescence_jumps=stats["quiescence_jumps"],
            pipelined_windows=stats["pipelined_windows"],
            cross_shard_messages=stats["cross_shard_messages"],
            msgs_per_window=stats["cross_shard_messages"] / windows,
        )
        row["snapshot"] = sim.snapshot()
        sim.close()
    else:
        from repro.analysis.export import graph_snapshot

        row["snapshot"] = graph_snapshot(sim)
    return row


def run_comparison(
    n_sites=N_SITES,
    duration=DURATION,
    workers=WORKERS,
    churn_until=CHURN_UNTIL,
):
    """Fixed vs demand at ``workers``, plus the sequential twin."""
    fixed = run_planner(
        "fixed", workers, n_sites, duration, churn_until
    )
    demand = run_planner(
        "demand", workers, n_sites, duration, churn_until
    )
    sequential = run_planner(
        "demand", 1, n_sites, duration, churn_until
    )
    snapshots = [row.pop("snapshot") for row in (fixed, demand, sequential)]
    reduction = fixed["windows"] / max(1, demand["windows"])
    return {
        "sites": n_sites,
        "workers": workers,
        "duration": duration,
        "churn_until": churn_until,
        "snapshots_identical": all(s == snapshots[0] for s in snapshots),
        "fixed": fixed,
        "demand": demand,
        "sequential": sequential,
        "window_reduction": reduction,
        "window_reduction_at_least_5x": reduction >= REDUCTION_FLOOR,
    }


# -- pytest entry points -----------------------------------------------------


def test_e20_window_reduction(benchmark, record_table):
    """Deterministic >= 5x window reduction; identical snapshots.

    Window counts are host-independent (see module docstring), so unlike
    the wall-clock speedup benches this assertion is NOT cpu-gated.
    """
    results = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    table = Table(
        "E20: window planning, fixed vs demand "
        f"({N_SITES} sites, {WORKERS} workers, {DURATION:.0f} time units)",
        ["planner", "windows", "eot", "quiesce", "piped", "msgs/win", "wall (s)"],
    )
    for key in ("fixed", "demand"):
        row = results[key]
        table.add_row(
            row["planner"],
            row["windows"],
            row["eot_jumps"],
            row["quiescence_jumps"],
            row["pipelined_windows"],
            f"{row['msgs_per_window']:.2f}",
            f"{row['wall_seconds']:.3f}",
        )
    record_table("e20_window_planning", table)

    assert results["snapshots_identical"]
    assert results["fixed"]["events"] == results["demand"]["events"]
    assert results["demand"]["events"] == results["sequential"]["events"]
    # Same messages crossed shards; only the number of round trips changed.
    assert (
        results["fixed"]["cross_shard_messages"]
        == results["demand"]["cross_shard_messages"]
    )
    assert results["window_reduction_at_least_5x"], results["window_reduction"]
    # The fixed planner must never jump or pipeline (A/B purity).
    assert results["fixed"]["eot_jumps"] == 0
    assert results["fixed"]["quiescence_jumps"] == 0
    assert results["fixed"]["pipelined_windows"] == 0


def _check_regression(results):
    """Warn (never fail) when the window reduction degrades vs the committed
    E20 segment of BENCH_parallel_sim.json."""
    import json
    import os
    import sys

    path = os.path.join(
        os.path.dirname(__file__), "..", "BENCH_parallel_sim.json"
    )
    try:
        with open(path) as fh:
            baseline = json.load(fh).get("e20", {})
    except (OSError, ValueError):
        print("regression check: no readable BENCH_parallel_sim.json; skipping", file=sys.stderr)
        return
    if results.get("duration") != baseline.get("duration"):
        # Window counts scale with the quiet tail's length; a smoke run
        # against a full-length baseline would warn unconditionally.
        print(
            "regression check: window_reduction skipped "
            "(duration mismatch vs baseline)"
        , file=sys.stderr)
        return
    base = baseline.get("window_reduction")
    cur = results.get("window_reduction")
    if not base or not cur:
        return
    if cur < base * 0.80:
        print(
            f"WARNING: window_reduction regressed >20%: "
            f"{cur:.3f} vs baseline {base:.3f}"
        , file=sys.stderr)
    else:
        print(
            f"regression check: window_reduction ok "
            f"({cur:.3f} vs baseline {base:.3f})"
        , file=sys.stderr)


if __name__ == "__main__":
    # Standalone mode: emit the comparison as JSON (the combined
    # BENCH_parallel_sim.json is regenerated by bench_e19_persistent_pool).
    # ``--smoke`` shortens the tail but keeps the reduction assertion;
    # ``--check-regression`` compares (warn-only) against the committed
    # baseline when the scales match.
    import json
    import sys

    try:
        from .hostinfo import host_header
    except ImportError:
        from hostinfo import host_header

    smoke = "--smoke" in sys.argv
    results = run_comparison(duration=6000.0 if smoke else DURATION)
    results["smoke"] = smoke
    results["host"] = host_header()
    json.dump(results, sys.stdout, indent=2)
    print()
    if "--check-regression" in sys.argv:
        _check_regression(results)
    floor = 4.0 if smoke else REDUCTION_FLOOR
    if not (
        results["snapshots_identical"]
        and results["window_reduction"] >= floor
    ):
        sys.exit(1)
