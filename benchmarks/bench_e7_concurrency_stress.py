"""E7 -- Safety and completeness under full concurrency (paper section 6).

Claims: the collector is "safe in the presence of concurrent mutations" and
"collects all distributed cyclic garbage".  The bench runs the whole system
at once -- jittered non-atomic local traces, random mutators firing transfer
and insert barriers, back traces -- across seeds, and reports:

- safety violations observed by the omniscient oracle (must be 0);
- residual garbage after mutators stop and the system drains (must be 0);
- barrier and clean-rule activity (evidence the section-6 machinery ran).
"""

import pytest

from repro import GcConfig, Simulation, SimulationConfig
from repro.analysis import Oracle
from repro.harness.report import Table
from repro.mutator import RandomWorkload, WorkloadConfig
from repro.workloads import build_random_clustered_graph

# An aggressive configuration: with T = 1 every object two or more
# inter-site hops from a root is suspected, so mutator traversals constantly
# cross suspected inrefs (exercising the transfer barrier and clean rule),
# and premature back traces abort Live (exercising threshold ratcheting).
STRESS_GC = GcConfig(
    suspicion_threshold=1,
    assumed_cycle_length=4,
    local_trace_period=60.0,
    local_trace_period_jitter=20.0,
    local_trace_duration=5.0,
    backtrace_timeout=200.0,
)


def run_stress(seed, n_sites=4, n_mutators=3, duration=3000.0):
    sites = [f"s{i}" for i in range(n_sites)]
    sim = Simulation(SimulationConfig(seed=seed, gc=STRESS_GC))
    sim.add_sites(sites, auto_gc=True)
    workload = build_random_clustered_graph(sim, sites, objects_per_site=25, seed=seed)
    # Seed explicit cross-site cycles hanging off the catalog-like roots,
    # then cut them loose over time: the churn thus interleaves mutations
    # with genuine distributed cyclic garbage for the detector to chase.
    from repro.workloads import build_ring_cycle

    rings = [
        build_ring_cycle(sim, sites[offset:] + sites[:offset])
        for offset in range(min(3, n_sites))
    ]

    def cut_next(remaining=list(rings)):
        if remaining:
            remaining.pop().make_garbage(sim)
            sim.scheduler.schedule(duration / 4, lambda: cut_next(remaining))

    sim.scheduler.schedule(duration / 4, cut_next)
    oracle = Oracle(sim)
    mutators = [
        RandomWorkload(
            sim,
            f"m{i}",
            workload.roots[i % len(workload.roots)],
            config=WorkloadConfig(mean_interval=3.0),
        )
        for i in range(n_mutators)
    ]
    for mutator in mutators:
        mutator.start()
    safety_checks = 0
    for _ in range(20):
        sim.run_for(duration / 20)
        oracle.check_safety()
        safety_checks += 1
    for mutator in mutators:
        mutator.stop()
    sim.quiesce_auto_gc()
    sim.settle(quiet_time=30.0, max_rounds=3000)
    oracle.check_safety()
    rounds_to_drain = 0
    for _ in range(120):
        if not oracle.garbage_set():
            break
        sim.run_gc_round()
        oracle.check_safety()
        rounds_to_drain += 1
    assert not oracle.garbage_set()
    return {
        "ops": sum(m.ops_executed for m in mutators),
        "safety_checks": safety_checks,
        "rounds_to_drain": rounds_to_drain,
        "traces_started": sim.metrics.count("backtrace.started"),
        "traces_garbage": sim.metrics.count("backtrace.completed_garbage"),
        "traces_live": sim.metrics.count("backtrace.completed_live"),
        "transfer_barriers": sim.metrics.count("barrier.transfer_applied"),
        "clean_rule_hits": sim.metrics.count("backtrace.clean_rule_hits"),
        "objects_swept": sim.metrics.count("gc.objects_swept"),
    }


@pytest.mark.parametrize("seed", [0, 2])
def test_stress_run(benchmark, seed):
    stats = benchmark.pedantic(run_stress, args=(seed,), rounds=1, iterations=1)
    assert stats["ops"] > 200
    assert stats["traces_garbage"] >= 1


def test_e7_seed_sweep(benchmark, record_table):
    def run():
        return [(seed, run_stress(seed)) for seed in range(6)]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = Table(
        "E7: randomized churn, 4 sites x 3 mutators x 3000 time units per seed",
        [
            "seed",
            "mutator ops",
            "objects swept",
            "traces (garbage/live)",
            "transfer barriers",
            "clean-rule hits",
            "safety violations",
            "residual garbage",
        ],
    )
    for seed, stats in rows:
        table.add_row(
            seed,
            stats["ops"],
            stats["objects_swept"],
            f"{stats['traces_garbage']}/{stats['traces_live']}",
            stats["transfer_barriers"],
            stats["clean_rule_hits"],
            0,  # check_safety would have raised otherwise
            0,  # asserted inside run_stress
        )
    record_table("e7_stress", table)
    assert sum(stats["transfer_barriers"] for _, stats in rows) > 0
