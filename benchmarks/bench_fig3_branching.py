"""F3 -- Figure 3: a back trace that branches.

A call at inref c forks parallel branches to sites P and Q; one branch hits
an ioref already visited by the other and returns Garbage from that dead end,
while the branch that reaches the long root path returns Live -- and Live
wins.  We measure the fork width and verify the verdict and that visited
marks are cleaned up afterwards.
"""

import pytest

from repro.core.backtrace.messages import TraceOutcome
from repro.harness.report import Table
from repro.harness.scenarios import build_figure3


def run_branching_trace():
    scenario = build_figure3()
    sim = scenario.sim
    # Suspect the a/b/c/d region but keep the root path's final hop clean,
    # as in the figure ("long path from root").
    for site_id in ("P", "Q", "R", "T"):
        for entry in sim.site(site_id).inrefs.entries():
            for source in entry.sources:
                entry.sources[source] = 9
    for site_id in ("P", "Q", "R", "S", "T"):
        sim.sites[site_id].run_local_trace()
    sim.settle()
    # Keep the S->a source clean: the root path.
    sim.site("P").inrefs.require(scenario["a"]).sources["S"] = 1
    before = sim.metrics.snapshot()
    # The trace "from d": starts at R's outref for d, whose inset is {c};
    # the call at inref c forks branches to both of its sources, P and Q.
    trace_id = sim.site("R").engine.start_trace(scenario["d"])
    assert trace_id is not None
    sim.settle()
    delta = sim.metrics.snapshot().diff(before)
    verdict = sim.trace_outcomes[-1][3]
    # A Live short-circuit reports only to the participants it heard from;
    # branches still in flight clear their marks via the conservative
    # outcome timeout (section 4.6) -- run past it before counting.
    sim.run_for(3 * sim.config.gc.backtrace_timeout)
    marks_left = sum(
        len(entry.visited)
        for site in sim.sites.values()
        for entry in list(site.inrefs.entries()) + list(site.outrefs.entries())
    )
    return scenario, delta, verdict, marks_left


def test_fig3_branching_returns_live(benchmark, record_table):
    scenario, delta, verdict, marks_left = benchmark.pedantic(
        run_branching_trace, rounds=1, iterations=1
    )
    table = Table(
        "F3 (Figure 3): branching back trace over a live structure",
        ["metric", "value"],
    )
    table.add_row("verdict", verdict.value)
    table.add_row("back calls sent", delta.get("messages.BackCall", 0))
    table.add_row("back replies", delta.get("messages.BackReply", 0))
    table.add_row("visited marks left (after outcome + timeouts)", marks_left)
    record_table("fig3_branching", table)
    assert verdict is TraceOutcome.LIVE
    # The trace forked: more than one call crossed the network.
    assert delta.get("messages.BackCall", 0) >= 2
    assert marks_left == 0  # outcome + timeouts clear every visited mark
    # Nothing was flagged garbage anywhere.
    for site in scenario.sim.sites.values():
        assert not site.inrefs.garbage_targets()
