"""E6 -- Locality comparison: back tracing vs the section-7 baselines.

One scenario, five collectors.  A two-site garbage cycle (on s0, s1) lives
in an 8-site system whose other sites hold live inter-site structure.
Measured per collector:

- rounds of its own driving loop until the cycle is collected;
- messages its protocol spent;
- **sites involved** in its protocol traffic (the locality property: back
  tracing and migration touch only the cycle's sites; global tracing and
  Hughes touch everyone; group tracing touches the group, which can exceed
  the cycle);
- whether the cycle is still collected when a bystander site (not on the
  cycle) has crashed.

Expected shape (paper sections 1, 7): back tracing collects with the fewest
sites and small constant-size messages; migration also has locality but pays
object-sized messages; global/Hughes involve all sites and stall under a
single crash; group tracing sits in between.

The driver lives in :mod:`repro.harness.comparison` (shared with
``examples/baseline_shootout.py``).
"""

import pytest

from repro.harness.comparison import (
    CYCLE_SITES,
    N_SITES,
    PROTOCOL_KINDS,
    run_with_collector,
)
from repro.harness.report import Table


@pytest.mark.parametrize("name", sorted(PROTOCOL_KINDS))
def test_collector_collects_cycle(benchmark, name):
    stats = benchmark.pedantic(
        run_with_collector, args=(name,), rounds=1, iterations=1
    )
    assert stats["collected"], f"{name} failed to collect the cycle"


def test_e6_comparison_table(benchmark, record_table):
    def run():
        rows = []
        for name in ("backtrace", "migration", "group", "trial", "central", "hughes", "global"):
            healthy = run_with_collector(name)
            crashed = run_with_collector(name, crash_bystander=True)
            rows.append((name, healthy, crashed))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = Table(
        "E6: collecting a 2-site cycle in an 8-site system (one crashed bystander in the last column)",
        [
            "collector",
            "rounds",
            "protocol msgs",
            "msg units",
            "sites involved",
            "collected",
            "collected w/ crash",
        ],
    )
    results = {}
    for name, healthy, crashed in rows:
        results[name] = (healthy, crashed)
        table.add_row(
            name,
            healthy["rounds"] if healthy["rounds"] is not None else "-",
            healthy["messages"],
            healthy["units"],
            len(healthy["involved"]),
            "yes" if healthy["collected"] else "no",
            "yes" if crashed["collected"] else "NO",
        )
    record_table("e6_comparison", table)

    # The paper's qualitative claims, as hard assertions.
    bt_healthy, bt_crashed = results["backtrace"]
    assert bt_healthy["collected"] and bt_crashed["collected"]
    assert set(bt_healthy["involved"]) == set(CYCLE_SITES)  # locality

    mig_healthy, mig_crashed = results["migration"]
    assert mig_healthy["collected"] and mig_crashed["collected"]
    assert set(mig_healthy["involved"]) <= set(CYCLE_SITES)
    # Few messages, but each carries a whole object: migration's hidden cost.
    assert mig_healthy["units"] >= 20
    assert bt_healthy["units"] == bt_healthy["messages"]  # constant-size msgs

    grp_healthy, grp_crashed = results["group"]
    assert grp_healthy["collected"] and grp_crashed["collected"]

    glob_healthy, glob_crashed = results["global"]
    assert glob_healthy["collected"]
    assert not glob_crashed["collected"]          # one crash stalls everyone
    assert len(glob_healthy["involved"]) == N_SITES

    hug_healthy, hug_crashed = results["hughes"]
    assert hug_healthy["collected"]
    assert not hug_crashed["collected"]           # threshold held down
    assert len(hug_healthy["involved"]) == N_SITES

    trial_healthy, trial_crashed = results["trial"]
    assert trial_healthy["collected"] and trial_crashed["collected"]
    # The trial's subgraph stayed within the cycle here (no live pointees).
    assert set(trial_healthy["involved"]) <= set(CYCLE_SITES)

    cent_healthy, cent_crashed = results["central"]
    assert cent_healthy["collected"]
    assert not cent_crashed["collected"]          # one silent site stalls all
    assert len(cent_healthy["involved"]) == N_SITES
