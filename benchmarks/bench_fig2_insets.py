"""F2 -- Figure 2: insets of suspected outrefs and the start-from-outref rule.

The figure's point: a back trace started from *inref* a would miss the path
from inref b to object a, but one started from *outref* c sees inset {a, b}
and finds every backward path.  We verify the computed insets match the
figure and that the whole interlocked structure is collected.
"""

import pytest

from repro.analysis import Oracle
from repro.harness.report import Table
from repro.harness.scenarios import build_figure2


def compute_insets():
    scenario = build_figure2()
    sim = scenario.sim
    for entry in sim.site("Q").inrefs.entries():
        for source in entry.sources:
            entry.sources[source] = 9
    sim.site("Q").run_local_trace()
    q = sim.site("Q")
    return scenario, {
        "c": q.outrefs.require(scenario["c"]).inset,
        "d": q.outrefs.require(scenario["d"]).inset,
    }


def collect_structure(max_rounds=40):
    scenario = build_figure2()
    sim = scenario.sim
    oracle = Oracle(sim)
    for round_number in range(1, max_rounds + 1):
        sim.run_gc_round()
        oracle.check_safety()
        if not oracle.garbage_set():
            return scenario, round_number
    return scenario, None


def test_fig2_insets_match_figure(benchmark, record_table):
    scenario, insets = benchmark.pedantic(compute_insets, rounds=1, iterations=1)
    table = Table(
        "F2 (Figure 2): computed insets of Q's suspected outrefs",
        ["outref", "inset (computed)", "inset (figure)"],
    )
    names = {scenario["a"]: "a", scenario["b"]: "b"}
    table.add_row(
        "c", "{" + ",".join(sorted(names[x] for x in insets["c"])) + "}", "{a,b}"
    )
    table.add_row(
        "d", "{" + ",".join(sorted(names[x] for x in insets["d"])) + "}", "{b}"
    )
    record_table("fig2_insets", table)
    assert insets["c"] == {scenario["a"], scenario["b"]}
    assert insets["d"] == {scenario["b"]}


def test_fig2_structure_collected(benchmark, record_table):
    scenario, rounds = benchmark.pedantic(collect_structure, rounds=1, iterations=1)
    assert rounds is not None
    table = Table(
        "F2 (Figure 2): interlocked two-cycle garbage structure",
        ["metric", "value"],
    )
    table.add_row("objects", 4)
    table.add_row("sites", 3)
    table.add_row("rounds to full collection", rounds)
    record_table("fig2_collection", table)
