"""E18 (extension) -- Delta updates + flat-graph kernel: data-plane cost.

PR "delta-encoded update protocol and flat-graph trace kernel" claims two
headline numbers on the E13 steady-state workload shape (16 sites, large
local heaps, quiescent after an initial collection), each measured by its
own segment:

1. **Throughput** (timed segment): with auto-GC timers plus light churn
   driving a deterministic event stream that is byte-identical across
   modes, the optimized data plane fires >= 1.5x more scheduler events per
   wall second, because the clean phase scans dense int arrays instead of
   hashing ObjectIds (``flat_kernel``).
2. **Bandwidth** (untimed manual-round segment): across a quiescent steady
   state long enough to cover the periodic-full-trace safety net, update
   traffic drops >= 60% in size units, because quiescent delta traces ship
   nothing and full state transfers happen every ``full_update_period``-th
   full trace instead of on every one (``delta_updates``).

Both are *pure* optimizations: the bench re-runs the workload with the
legacy kernel + full-snapshot updates and asserts the final snapshot and
back-trace outcomes are identical -- including a 4-worker parallel twin and
a chaos-plan twin of the optimized configuration.

Standalone mode emits BENCH_data_plane.json; ``--smoke`` shrinks the
workload for CI; ``--check-regression`` compares the (machine-independent)
speedup and reduction ratios against the committed baseline and warns --
without failing -- when either degrades by more than 20%.
"""

import gc as pygc
import json
import time

from repro import GcConfig, NetworkConfig, Simulation, SimulationConfig
from repro.analysis import Oracle
from repro.harness.report import Table
from repro.metrics import graph_snapshot
from repro.net.faults import FaultPlan
from repro.sim.parallel import ParallelSimulation
from repro.workloads import ChurnConfig, GraphBuilder, SiteChurn, build_ring_cycle

N_SITES = 16
CHAIN = 800  # local chain objects per site: scanning dominates wall time
# Outrefs per site, all toward ONE peer site: legacy's periodic re-listing
# then costs FANOUT size units per full update (what the bandwidth claim
# measures) without multiplying message/event counts.
FANOUT = 8
# One complete delta full-refresh cycle: the safety net forces a full trace
# every ``full_trace_every_n``+1 quiescent ticks, legacy ships a full update
# on each of those, and delta mode re-anchors on every
# ``full_update_period``-th full trace -- so 36 rounds cover exactly four
# forced fulls per site, of which delta mode refreshes once.
STEADY_ROUNDS = 36
CYCLE_SPAN = 8  # sites per distributed garbage ring

LEGACY = dict(delta_updates=False, flat_kernel=False)


def _build(
    seed,
    gc,
    chain,
    parallel_workers=1,
    fault_plan=None,
    network=None,
    auto_gc=False,
):
    config = SimulationConfig(
        seed=seed,
        gc=gc,
        network=network or NetworkConfig(),
        parallel_workers=parallel_workers,
    )
    sim = Simulation.create(config, fault_plan=fault_plan)
    sites = [f"s{i:02d}" for i in range(N_SITES)]
    sim.add_sites(sites, auto_gc=auto_gc)
    builder = GraphBuilder(sim)
    # Large per-site heaps (a rooted chain) plus FANOUT outrefs toward the
    # next site, so every full trace scans real structure and every full
    # update re-lists real distances.
    roots = []
    for index, site in enumerate(sites):
        root = builder.obj(site, root=True)
        roots.append(root)
        prev = root
        for _ in range(chain):
            nxt = builder.obj(site)
            builder.link(prev, nxt)
            prev = nxt
        for _ in range(FANOUT):
            peer = builder.obj(sites[(index + 1) % N_SITES])
            builder.link(prev, peer)
    cycles = [
        build_ring_cycle(sim, sites[k : k + CYCLE_SPAN])
        for k in range(0, N_SITES, CYCLE_SPAN)
    ]
    return sim, cycles, roots


THROUGHPUT_DURATION = 2000.0
THROUGHPUT_CHAIN = 2400  # big enough that full-trace scans dominate wall time
THROUGHPUT_GC = dict(local_trace_period=150.0, local_trace_period_jitter=30.0)
THROUGHPUT_CHURN_INTERVAL = 40.0  # light churn: keep the scan share dominant
THROUGHPUT_REPEATS = 3


def _timed_run(mode, chain, duration, seed):
    features = {} if mode == "optimized" else dict(LEGACY)
    sim, _, _ = _build(
        seed, GcConfig(**THROUGHPUT_GC, **features), chain, auto_gc=True
    )
    churn = SiteChurn(
        sim,
        sorted(sim.sites),
        ChurnConfig(mean_interval=THROUGHPUT_CHURN_INTERVAL),
    )
    churn.start()
    # The interpreter's cycle detector would otherwise walk the (large,
    # mode-independent) heap mirror at allocation-driven intervals, burying
    # the kernel difference under identical noise.
    pygc.collect()
    pygc.freeze()
    pygc.disable()
    try:
        started = time.perf_counter()
        fired = sim.run_for(duration)
        wall_seconds = time.perf_counter() - started
    finally:
        pygc.enable()
        pygc.unfreeze()
    return sim, fired, wall_seconds


def run_throughput(mode, chain=THROUGHPUT_CHAIN, duration=THROUGHPUT_DURATION, seed=3):
    """Event throughput under live load (same measure as bench e16).

    Auto-GC timers plus a churn workload drive a large event stream that is
    the same for both modes to within the update traffic (under a percent);
    with ``chain``-sized heaps, wall time is dominated by the periodic full
    traces, which is exactly what the flat kernel accelerates.  The run is
    repeated and the best wall time kept: the simulation is deterministic,
    so repeats only shed cold-start noise.
    """
    walls = []
    for _ in range(THROUGHPUT_REPEATS):
        sim, fired, wall_seconds = _timed_run(mode, chain, duration, seed)
        walls.append(wall_seconds)
    wall_seconds = min(walls)
    scanned = sim.metrics.count("gc.objects_scanned")
    return {
        "mode": mode,
        "chain": chain,
        "duration": duration,
        "events": fired,
        "wall_seconds": wall_seconds,
        "wall_seconds_all": walls,
        "events_per_sec": fired / wall_seconds if wall_seconds > 0 else 0.0,
        "objects_scanned": scanned,
        "objects_scanned_per_sec": scanned / wall_seconds
        if wall_seconds > 0
        else 0.0,
        "churn_ops": sim.metrics.count("churn.ops"),
        "update_units": sim.metrics.count("units.UpdatePayload")
        + sim.metrics.count("units.UpdateDeltaPayload"),
    }


def run_steady_state(mode, chain=CHAIN, rounds=STEADY_ROUNDS, seed=2):
    """Update bandwidth on the e13 steady state (and the identity twin).

    The cycles are collected, then ``rounds`` quiescent rounds run at the
    natural periodic-GC cadence: the incremental planner resolves most ticks
    as skips, and every ``full_trace_every_n``-th tick is a planner-forced
    full trace.  Legacy mode sends a full update (re-listing every outref
    distance) on each of those; delta mode ships nothing until its own
    sparser ``full_update_period`` refresh comes due.
    """
    features = {} if mode == "optimized" else dict(LEGACY)
    sim, cycles, roots = _build(seed, GcConfig(**features), chain)
    for _ in range(2):
        sim.run_gc_round()
    for cycle in cycles:
        cycle.make_garbage(sim)
    oracle = Oracle(sim)
    collect_rounds = 0
    for _ in range(60):
        sim.run_gc_round()
        collect_rounds += 1
        oracle.check_safety()
        if not oracle.garbage_set():
            break
    assert not oracle.garbage_set(), "initial garbage not collected"

    before = sim.metrics.snapshot()
    for index in range(rounds):
        if index == 2:
            # One live mutation mid-window so the quiescent segment also
            # exercises the delta path (an add), identically in both modes.
            sim.sites[sorted(sim.sites)[0]].mutator_add_ref(roots[0], roots[1])
        sim.run_gc_round()
    delta = sim.metrics.snapshot().diff(before)
    oracle.check_safety()

    update_units = delta.get("units.UpdatePayload", 0) + delta.get(
        "units.UpdateDeltaPayload", 0
    )
    snap = graph_snapshot(sim)
    snap.pop("time", None)
    return {
        "mode": mode,
        "rounds": rounds,
        "collect_rounds": collect_rounds,
        "chain": chain,
        "objects_scanned": delta.get("gc.objects_scanned", 0),
        "update_units": update_units,
        "update_messages": delta.get("messages.UpdatePayload", 0)
        + delta.get("messages.UpdateDeltaPayload", 0),
        "full_refreshes": delta.get("gc.update_full_refreshes", 0),
        "deltas_sent": delta.get("gc.update_deltas_sent", 0),
        "fingerprint": json.dumps(snap, sort_keys=True),
        "outcomes": sorted(
            (s, str(t), str(v)) for _, s, t, v in sim.trace_outcomes
        ),
    }


# -- twins: the optimizations must not change a single outcome ---------------

TWIN_NETWORK = dict(min_latency=5.0, max_latency=20.0, pair_rng_streams=True)
TWIN_PLAN = FaultPlan.loss(0.15, start=30.0, end=200.0).merge(
    FaultPlan.duplication(0.2, copies=1, lag=10.0, start=30.0, end=200.0)
).named("e18-storm")


def run_twin(workers=1, chain=40, seed=7, plan=None, rounds=12, **features):
    sim, cycles, _ = _build(
        seed,
        GcConfig(**features),
        chain,
        parallel_workers=workers,
        fault_plan=plan,
        network=NetworkConfig(**TWIN_NETWORK),
    )
    for _ in range(2):
        sim.run_gc_round()
    for cycle in cycles:
        cycle.make_garbage(sim)
    for _ in range(rounds):
        sim.run_gc_round()
    sim.settle(quiet_time=30.0, max_rounds=3000)
    outcomes = sorted((s, str(t), str(v)) for _, s, t, v in sim.trace_outcomes)
    if isinstance(sim, ParallelSimulation):
        snap = sim.snapshot()
        sim.close()
    else:
        snap = graph_snapshot(sim)
    snap.pop("time", None)
    return json.dumps(snap, sort_keys=True), outcomes


def run_bench(
    chain=CHAIN,
    rounds=STEADY_ROUNDS,
    twin_chain=40,
    duration=THROUGHPUT_DURATION,
    throughput_chain=THROUGHPUT_CHAIN,
):
    throughput_opt = run_throughput(
        "optimized", chain=throughput_chain, duration=duration
    )
    throughput_leg = run_throughput(
        "legacy", chain=throughput_chain, duration=duration
    )
    optimized = run_steady_state("optimized", chain=chain, rounds=rounds)
    legacy = run_steady_state("legacy", chain=chain, rounds=rounds)
    twin_opt = run_twin(chain=twin_chain)
    twin_leg = run_twin(chain=twin_chain, **LEGACY)
    twin_par = run_twin(chain=twin_chain, workers=4)
    twin_chaos_seq = run_twin(chain=twin_chain, plan=TWIN_PLAN)
    twin_chaos_par = run_twin(chain=twin_chain, workers=4, plan=TWIN_PLAN)
    reduction = (
        1.0 - optimized["update_units"] / legacy["update_units"]
        if legacy["update_units"]
        else 0.0
    )
    return {
        "throughput_optimized": throughput_opt,
        "throughput_legacy": throughput_leg,
        "steady_optimized": optimized,
        "steady_legacy": legacy,
        "events_per_sec_speedup": (
            throughput_opt["events_per_sec"] / throughput_leg["events_per_sec"]
            if throughput_leg["events_per_sec"]
            else 0.0
        ),
        "update_units_reduction": reduction,
        "steady_state_identical": (
            optimized["fingerprint"] == legacy["fingerprint"]
            and optimized["outcomes"] == legacy["outcomes"]
        ),
        "mode_twin_identical": twin_opt == twin_leg,
        "parallel_twin_identical": twin_opt == twin_par,
        "chaos_twin_identical": twin_chaos_seq == twin_chaos_par,
    }


# -- pytest entry points -----------------------------------------------------


def test_e18_data_plane(benchmark, record_table):
    stats = benchmark.pedantic(
        run_bench,
        kwargs=dict(chain=80, twin_chain=20, duration=400.0, throughput_chain=200),
        rounds=1,
        iterations=1,
    )
    opt, leg = stats["steady_optimized"], stats["steady_legacy"]
    table = Table(
        "E18: steady-state data plane, optimized vs legacy (16 sites)",
        ["mode", "update units", "update msgs", "full refreshes", "deltas"],
    )
    for row in (leg, opt):
        table.add_row(
            row["mode"],
            row["update_units"],
            row["update_messages"],
            row["full_refreshes"],
            row["deltas_sent"],
        )
    record_table("e18_data_plane", table)

    # Deterministic claims are strict; the wall-clock ratio is asserted
    # only loosely here (CI machines are noisy, and at this CI-sized heap
    # scanning does not dominate) -- the full-size ratio is pinned in the
    # committed JSON and watched by --check-regression.
    assert stats["steady_state_identical"]
    assert stats["mode_twin_identical"]
    assert stats["parallel_twin_identical"]
    assert stats["chaos_twin_identical"]
    assert stats["update_units_reduction"] >= 0.60
    assert stats["events_per_sec_speedup"] > 0.5


# -- standalone --------------------------------------------------------------

BASELINE_FILE = "BENCH_data_plane.json"
REGRESSION_TOLERANCE = 0.20


def _check_regression(results):
    """Warn (never fail) when the headline ratios degrade vs the baseline."""
    import os

    path = os.path.join(os.path.dirname(__file__), "..", BASELINE_FILE)
    try:
        with open(path) as fh:
            baseline = json.load(fh)
    except (OSError, ValueError):
        print(f"regression check: no readable baseline at {BASELINE_FILE}; skipping")
        return
    for key in ("events_per_sec_speedup", "update_units_reduction"):
        if key == "events_per_sec_speedup" and results.get("smoke") != baseline.get(
            "smoke"
        ):
            # The speedup ratio depends on heap scale (scan share of wall
            # time); comparing a smoke run against a full-size baseline
            # would warn unconditionally.  The units reduction is a pure
            # protocol ratio and compares across scales.
            print(f"regression check: {key} skipped (scale mismatch vs baseline)")
            continue
        base = baseline.get(key)
        cur = results.get(key)
        if not base or not cur:
            continue
        if cur < base * (1.0 - REGRESSION_TOLERANCE):
            print(
                f"WARNING: {key} regressed >20%: {cur:.3f} vs baseline {base:.3f}"
            )
        else:
            print(f"regression check: {key} ok ({cur:.3f} vs baseline {base:.3f})")


if __name__ == "__main__":
    import sys

    smoke = "--smoke" in sys.argv
    kwargs = (
        dict(chain=60, twin_chain=20, duration=400.0, throughput_chain=200)
        if smoke
        else {}
    )
    try:
        from .hostinfo import host_header
    except ImportError:
        from hostinfo import host_header

    results = {"host": host_header()}
    results |= run_bench(**kwargs)
    for row in (results["steady_optimized"], results["steady_legacy"]):
        row.pop("fingerprint")
        row.pop("outcomes")
    results["smoke"] = smoke
    json.dump(results, sys.stdout, indent=2)
    print()
    if "--check-regression" in sys.argv:
        _check_regression(results)
    ok = (
        results["steady_state_identical"]
        and results["mode_twin_identical"]
        and results["parallel_twin_identical"]
        and results["chaos_twin_identical"]
    )
    if not ok:
        sys.exit(1)
