"""E14 -- The motivating claim: storage loss accumulates in long-lived systems.

Paper section 1: "Collection of such cycles is particularly important in
long-lived systems because even small amounts of uncollected garbage can
accumulate over time to cause a significant storage loss."

The bench runs a long-lived hypertext store through many publish/retire
epochs.  Each epoch publishes a fresh cross-linked document cluster (whose
citations close inter-site cycles) and retires an old one from the catalog.
With local tracing only, retired clusters accumulate forever; with back
tracing, steady-state storage is flat.  The recorded series is the figure
the paper's sentence describes.
"""

import pytest

from repro import GcConfig, Simulation, SimulationConfig
from repro.analysis import Oracle
from repro.harness.report import Table
from repro.workloads import GraphBuilder

SITES = ["lib0", "lib1", "lib2"]


def publish_cluster(sim, builder, catalog, epoch):
    """One document cluster: pages on all three sites, cyclically linked."""
    pages = [builder.obj(SITES[(epoch + offset) % 3]) for offset in range(3)]
    builder.link_cycle(pages)
    extra = builder.obj(SITES[epoch % 3])
    builder.link(pages[0], extra)
    sim.site(catalog.site).mutator_add_ref(catalog, pages[0])
    return pages[0]


def run_store(enable_backtracing, epochs=14, rounds_per_epoch=4, seed=9):
    gc = GcConfig(enable_backtracing=enable_backtracing)
    sim = Simulation(SimulationConfig(seed=seed, gc=gc))
    sim.add_sites(SITES, auto_gc=False)
    builder = GraphBuilder(sim)
    catalog = builder.obj("lib0", root=True)
    oracle = Oracle(sim)
    published = []
    series = []
    for epoch in range(epochs):
        published.append(publish_cluster(sim, builder, catalog, epoch))
        if len(published) > 3:
            # Retire the oldest still-cataloged cluster.
            victim = published.pop(0)
            if sim.site(catalog.site).heap.get(catalog).holds_ref(victim):
                sim.site(catalog.site).mutator_remove_ref(catalog, victim)
        for _ in range(rounds_per_epoch):
            sim.run_gc_round()
        oracle.check_safety()
        series.append((epoch + 1, sim.total_objects(), len(oracle.garbage_set())))
    return series


def test_e14_longitudinal_leak(benchmark, record_table):
    def run():
        return run_store(False), run_store(True)

    leaky, fixed = benchmark.pedantic(run, rounds=1, iterations=1)
    table = Table(
        "E14: long-lived store, publish+retire churn (3 clusters live at steady state)",
        ["epoch", "objects (local only)", "leaked", "objects (back tracing)", "leaked"],
    )
    for (epoch, objs_l, leak_l), (_, objs_f, leak_f) in zip(leaky, fixed):
        if epoch % 2 == 0:
            table.add_row(epoch, objs_l, leak_l, objs_f, leak_f)
    record_table("e14_longitudinal", table)

    # Leak grows roughly linearly without back tracing...
    assert leaky[-1][2] > leaky[len(leaky) // 2][2] > 0
    # ...and stays bounded (and small) with it.
    fixed_leaks = [leak for _, _, leak in fixed]
    assert max(fixed_leaks[len(fixed_leaks) // 2:]) <= 8
    # Steady-state storage with back tracing is flat (plus/minus a cluster).
    late = [objs for _, objs, _ in fixed[-4:]]
    assert max(late) - min(late) <= 8
    # The gap at the end is the accumulated loss the paper warns about.
    assert leaky[-1][1] > fixed[-1][1] + 20
