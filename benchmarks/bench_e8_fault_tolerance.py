"""E8 -- Fault tolerance and locality under failure (sections 2, 4.6).

Claims:

- locality implies a crashed site "will delay the collection of only the
  garbage reachable from its objects": cycles away from the failure are
  collected on time;
- back-trace waits are guarded by timeouts that conservatively decide Live:
  failures never cause unsafe collection, only (bounded) delay;
- after recovery / healing, the delayed garbage is collected too.
"""

import pytest

from repro import GcConfig, NetworkConfig, Simulation, SimulationConfig
from repro.analysis import Oracle
from repro.harness.report import Table
from repro.workloads import build_ring_cycle

FT_GC = GcConfig(backtrace_timeout=30.0)


def make_sim(sites, seed=8, network=None):
    sim = Simulation(
        SimulationConfig(seed=seed, gc=FT_GC, network=network or NetworkConfig())
    )
    sim.add_sites(sites, auto_gc=False)
    return sim


def rounds_until(sim, oracle, predicate, max_rounds=80):
    for round_number in range(1, max_rounds + 1):
        sim.run_gc_round()
        oracle.check_safety()
        if predicate():
            return round_number
    return None


def scenario_crash_bystander():
    """Cycle on a,b; c crashed; the cycle must still be collected."""
    sim = make_sim(["a", "b", "c", "d"])
    cycle = build_ring_cycle(sim, ["a", "b"])
    for _ in range(2):
        sim.run_gc_round()
    sim.site("c").crash()
    cycle.make_garbage(sim)
    oracle = Oracle(sim)
    rounds = rounds_until(
        sim, oracle, lambda: not {o for o in oracle.garbage_set() if o.site != "c"}
    )
    return rounds


def scenario_crash_member():
    """Cycle on a,b,c; c crashed: collection is delayed, resumes on recovery."""
    sim = make_sim(["a", "b", "c"])
    cycle = build_ring_cycle(sim, ["a", "b", "c"])
    for _ in range(2):
        sim.run_gc_round()
    cycle.make_garbage(sim)
    sim.site("c").crash()
    oracle = Oracle(sim)
    stalled = rounds_until(sim, oracle, lambda: not oracle.garbage_set(), max_rounds=12)
    survivors_alive = all(
        sim.site(m.site).heap.contains(m) for m in cycle.cycle if m.site != "c"
    )
    sim.site("c").recover()
    recovered = rounds_until(sim, oracle, lambda: not oracle.garbage_set())
    return stalled, survivors_alive, recovered


def scenario_partition():
    """Partition separates one cycle, not another."""
    sim = make_sim(["a", "b", "c", "d"])
    crossing = build_ring_cycle(sim, ["a", "c"])
    inside = build_ring_cycle(sim, ["a", "b"])
    for _ in range(2):
        sim.run_gc_round()
    crossing.make_garbage(sim)
    inside.make_garbage(sim)
    sim.network.partition({"a", "b"}, {"c", "d"})
    oracle = Oracle(sim)
    inside_rounds = rounds_until(
        sim,
        oracle,
        lambda: not [m for m in inside.cycle if sim.site(m.site).heap.contains(m)],
    )
    crossing_blocked = any(
        sim.site(m.site).heap.contains(m) for m in crossing.cycle
    )
    sim.network.heal_partition()
    healed_rounds = rounds_until(sim, oracle, lambda: not oracle.garbage_set())
    return inside_rounds, crossing_blocked, healed_rounds


def scenario_lossy_network(drop):
    sim = make_sim(["a", "b", "c"], network=NetworkConfig(drop_probability=drop))
    cycle = build_ring_cycle(sim, ["a", "b", "c"])
    for _ in range(2):
        sim.run_gc_round()
    cycle.make_garbage(sim)
    oracle = Oracle(sim)
    rounds = rounds_until(sim, oracle, lambda: not oracle.garbage_set(), max_rounds=150)
    return rounds


def test_e8_fault_matrix(benchmark, record_table):
    def run():
        bystander = scenario_crash_bystander()
        stalled, survivors_alive, recovered = scenario_crash_member()
        inside_rounds, crossing_blocked, healed = scenario_partition()
        lossless = scenario_lossy_network(0.0)
        lossy = scenario_lossy_network(0.2)
        return {
            "bystander": bystander,
            "member": (stalled, survivors_alive, recovered),
            "partition": (inside_rounds, crossing_blocked, healed),
            "loss": (lossless, lossy),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    table = Table(
        "E8: failures delay only the garbage they can reach; timeouts keep traces safe",
        ["scenario", "outcome"],
    )
    table.add_row(
        "crashed bystander", f"cycle collected in {results['bystander']} rounds"
    )
    stalled, survivors_alive, recovered = results["member"]
    table.add_row(
        "crashed cycle member",
        f"stalled (as required, survivors intact={survivors_alive}); "
        f"collected {recovered} rounds after recovery",
    )
    inside_rounds, crossing_blocked, healed = results["partition"]
    table.add_row(
        "partition",
        f"same-side cycle collected in {inside_rounds} rounds; crossing cycle "
        f"waited={crossing_blocked}; all clean {healed} rounds after healing",
    )
    lossless, lossy = results["loss"]
    table.add_row(
        "20% message loss",
        f"collected in {lossy} rounds (vs {lossless} lossless) -- "
        "timeouts retried safely",
    )
    record_table("e8_faults", table)

    assert results["bystander"] is not None
    assert stalled is None and survivors_alive and recovered is not None
    assert inside_rounds is not None and crossing_blocked and healed is not None
    assert lossless is not None and lossy is not None


@pytest.mark.parametrize("drop", [0.0, 0.1, 0.3])
def test_lossy_network_rounds(benchmark, drop):
    rounds = benchmark.pedantic(scenario_lossy_network, args=(drop,), rounds=1, iterations=1)
    assert rounds is not None
