"""E13 (extension) -- Scalability with system size (paper sections 1 and 8).

"It is suitable for emerging distributed object systems that must scale to a
large number of sites."  The concrete claim behind that sentence is
locality: the cost of collecting one cycle depends on the *cycle*, not on
the system.  The bench fixes the garbage (four 2-site cycles) and grows the
system around it from 8 to 64 sites, measuring back-trace messages and the
set of sites the cycle collection involves.  Flat lines = scalability.
"""

import time

import pytest

from repro import GcConfig, Simulation, SimulationConfig
from repro.analysis import Oracle, snapshot
from repro.harness.report import Table
from repro.workloads import GraphBuilder, build_ring_cycle

N_CYCLES = 4


def _build_system(n_sites, seed, gc):
    sites = [f"s{i:02d}" for i in range(n_sites)]
    sim = Simulation(SimulationConfig(seed=seed, gc=gc))
    sim.add_sites(sites, auto_gc=False)
    # The garbage: four 2-site cycles on the first 8 sites (fixed).
    cycles = [
        build_ring_cycle(sim, [sites[2 * k], sites[2 * k + 1]])
        for k in range(N_CYCLES)
    ]
    # Live background structure everywhere else, so bigger systems really
    # do more reference-listing work overall.
    builder = GraphBuilder(sim)
    for index in range(8, n_sites):
        root = builder.obj(sites[index], root=True)
        neighbour = builder.obj(sites[(index + 1) % n_sites])
        builder.link(root, neighbour)
    return sim, cycles


def run_system(n_sites, seed=2):
    sim, cycles = _build_system(n_sites, seed, GcConfig())
    for _ in range(2):
        sim.run_gc_round()
    for cycle in cycles:
        cycle.make_garbage(sim)
    oracle = Oracle(sim)
    before = sim.metrics.snapshot()
    rounds = None
    for round_number in range(1, 60):
        sim.run_gc_round()
        oracle.check_safety()
        if not oracle.garbage_set():
            rounds = round_number
            break
    assert rounds is not None
    delta = sim.metrics.snapshot().diff(before)
    backtrace_msgs = sum(
        delta.get(f"messages.{kind}", 0)
        for kind in ("BackCall", "BackReply", "BackOutcome")
    )
    involved = set()
    for key, value in delta.items():
        parts = key.split(".")
        if (
            len(parts) == 3
            and parts[0] == "involve"
            and parts[1] in ("BackCall", "BackReply", "BackOutcome")
            and value
        ):
            involved.add(parts[2])
    return {
        "rounds": rounds,
        "backtrace_msgs": backtrace_msgs,
        "involved_sites": len(involved),
        "total_msgs": delta.get("messages.total", 0),
    }


def test_e13_scalability_series(benchmark, record_table):
    def run():
        return [(n, run_system(n)) for n in (8, 16, 32, 64)]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = Table(
        f"E13: fixed garbage ({N_CYCLES} 2-site cycles), growing system",
        [
            "system sites",
            "rounds to clean",
            "back-trace msgs",
            "sites involved in back tracing",
        ],
    )
    for n_sites, stats in rows:
        table.add_row(
            n_sites, stats["rounds"], stats["backtrace_msgs"], stats["involved_sites"]
        )
    record_table("e13_scalability", table)
    msgs = [stats["backtrace_msgs"] for _, stats in rows]
    involved = [stats["involved_sites"] for _, stats in rows]
    # The headline: back-trace cost and involvement are flat in system size.
    assert len(set(msgs)) == 1
    assert len(set(involved)) == 1
    assert involved[0] == 2 * N_CYCLES


@pytest.mark.parametrize("n_sites", [8, 64])
def test_e13_wall_time(benchmark, n_sites):
    stats = benchmark.pedantic(run_system, args=(n_sites,), rounds=1, iterations=1)
    assert stats["rounds"] is not None


# -- incremental local traces on the e13 steady state ---------------------------
#
# After the cycles are collected the system is quiescent: every further gc
# tick re-scans an unchanged heap.  The incremental planner resolves those
# ticks as skips (plus one forced full trace per site every
# ``full_trace_every_n`` ticks), so steady-state scanning cost drops by
# roughly that factor while the table state stays byte-identical.

STEADY_ROUNDS = 24


def run_steady_state(n_sites, incremental, seed=2, steady_rounds=STEADY_ROUNDS):
    gc = GcConfig(incremental_traces=incremental)
    sim, cycles = _build_system(n_sites, seed, gc)
    for _ in range(2):
        sim.run_gc_round()
    for cycle in cycles:
        cycle.make_garbage(sim)
    oracle = Oracle(sim)
    for _ in range(60):
        sim.run_gc_round()
        oracle.check_safety()
        if not oracle.garbage_set():
            break
    assert not oracle.garbage_set()

    before = sim.metrics.snapshot()
    started = time.perf_counter()
    for _ in range(steady_rounds):
        sim.run_gc_round()
    wall_seconds = time.perf_counter() - started
    delta = sim.metrics.snapshot().diff(before)
    oracle.check_safety()

    ticks = steady_rounds * n_sites
    skipped = delta.get("gc.traces_skipped", 0)
    fast = delta.get("gc.traces_fast_path", 0)
    objects_scanned = delta.get("gc.objects_scanned", 0)
    return {
        "mode": "incremental" if incremental else "full",
        "ticks": ticks,
        "skipped": skipped,
        "fast_path": fast,
        "full": delta.get("gc.traces_full", 0),
        "resolved_cheaply": (skipped + fast) / ticks,
        "objects_scanned": objects_scanned,
        # Clean-phase throughput: how fast the hot scan loop chews through
        # objects (tracks the effect of micro-optimisations in
        # repro.core.distance on otherwise identical work).
        "objects_scanned_per_sec": objects_scanned / wall_seconds
        if wall_seconds > 0
        else 0.0,
        "update_messages": delta.get("messages.UpdatePayload", 0),
        "wall_seconds": wall_seconds,
        "fingerprint": snapshot(sim)["sites"],
    }


def test_e13_incremental_steady_state(benchmark, record_table):
    def run():
        return {
            incremental: run_steady_state(16, incremental)
            for incremental in (True, False)
        }

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    inc, full = stats[True], stats[False]
    table = Table(
        f"E13b: steady-state gc ticks ({STEADY_ROUNDS} rounds, 16 sites)",
        [
            "mode",
            "ticks",
            "skip",
            "fast",
            "full",
            "objects scanned",
            "scanned/s",
            "wall (s)",
        ],
    )
    for row in (full, inc):
        table.add_row(
            row["mode"],
            row["ticks"],
            row["skipped"],
            row["fast_path"],
            row["full"],
            row["objects_scanned"],
            f"{row['objects_scanned_per_sec']:.0f}",
            f"{row['wall_seconds']:.3f}",
        )
    record_table("e13b_incremental_steady_state", table)

    # Acceptance: >=70% of ticks resolve without a full trace, scanning
    # drops >=3x, and the final table state is byte-identical across modes.
    assert inc["resolved_cheaply"] >= 0.70
    assert inc["objects_scanned"] * 3 <= full["objects_scanned"]
    assert inc["fingerprint"] == full["fingerprint"]


if __name__ == "__main__":
    # Standalone mode: emit the steady-state comparison as JSON so the repo
    # can pin the headline numbers (see BENCH_incremental_trace.json).
    import json
    import sys

    try:
        from .hostinfo import host_header
    except ImportError:
        from hostinfo import host_header

    results = {"host": host_header()}
    results |= {
        "incremental" if inc else "full": {
            key: value
            for key, value in run_steady_state(16, inc).items()
            if key != "fingerprint"
        }
        for inc in (True, False)
    }
    results["objects_scanned_ratio"] = (
        results["full"]["objects_scanned"]
        / max(1, results["incremental"]["objects_scanned"])
    )
    json.dump(results, sys.stdout, indent=2)
    print()
