"""E13 (extension) -- Scalability with system size (paper sections 1 and 8).

"It is suitable for emerging distributed object systems that must scale to a
large number of sites."  The concrete claim behind that sentence is
locality: the cost of collecting one cycle depends on the *cycle*, not on
the system.  The bench fixes the garbage (four 2-site cycles) and grows the
system around it from 8 to 64 sites, measuring back-trace messages and the
set of sites the cycle collection involves.  Flat lines = scalability.
"""

import pytest

from repro import GcConfig, Simulation, SimulationConfig
from repro.analysis import Oracle
from repro.harness.report import Table
from repro.workloads import GraphBuilder, build_ring_cycle

N_CYCLES = 4


def run_system(n_sites, seed=2):
    sites = [f"s{i:02d}" for i in range(n_sites)]
    sim = Simulation(SimulationConfig(seed=seed, gc=GcConfig()))
    sim.add_sites(sites, auto_gc=False)
    # The garbage: four 2-site cycles on the first 8 sites (fixed).
    cycles = [
        build_ring_cycle(sim, [sites[2 * k], sites[2 * k + 1]])
        for k in range(N_CYCLES)
    ]
    # Live background structure everywhere else, so bigger systems really
    # do more reference-listing work overall.
    builder = GraphBuilder(sim)
    for index in range(8, n_sites):
        root = builder.obj(sites[index], root=True)
        neighbour = builder.obj(sites[(index + 1) % n_sites])
        builder.link(root, neighbour)
    for _ in range(2):
        sim.run_gc_round()
    for cycle in cycles:
        cycle.make_garbage(sim)
    oracle = Oracle(sim)
    before = sim.metrics.snapshot()
    rounds = None
    for round_number in range(1, 60):
        sim.run_gc_round()
        oracle.check_safety()
        if not oracle.garbage_set():
            rounds = round_number
            break
    assert rounds is not None
    delta = sim.metrics.snapshot().diff(before)
    backtrace_msgs = sum(
        delta.get(f"messages.{kind}", 0)
        for kind in ("BackCall", "BackReply", "BackOutcome")
    )
    involved = set()
    for key, value in delta.items():
        parts = key.split(".")
        if (
            len(parts) == 3
            and parts[0] == "involve"
            and parts[1] in ("BackCall", "BackReply", "BackOutcome")
            and value
        ):
            involved.add(parts[2])
    return {
        "rounds": rounds,
        "backtrace_msgs": backtrace_msgs,
        "involved_sites": len(involved),
        "total_msgs": delta.get("messages.total", 0),
    }


def test_e13_scalability_series(benchmark, record_table):
    def run():
        return [(n, run_system(n)) for n in (8, 16, 32, 64)]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = Table(
        f"E13: fixed garbage ({N_CYCLES} 2-site cycles), growing system",
        [
            "system sites",
            "rounds to clean",
            "back-trace msgs",
            "sites involved in back tracing",
        ],
    )
    for n_sites, stats in rows:
        table.add_row(
            n_sites, stats["rounds"], stats["backtrace_msgs"], stats["involved_sites"]
        )
    record_table("e13_scalability", table)
    msgs = [stats["backtrace_msgs"] for _, stats in rows]
    involved = [stats["involved_sites"] for _, stats in rows]
    # The headline: back-trace cost and involvement are flat in system size.
    assert len(set(msgs)) == 1
    assert len(set(involved)) == 1
    assert involved[0] == 2 * N_CYCLES


@pytest.mark.parametrize("n_sites", [8, 64])
def test_e13_wall_time(benchmark, n_sites):
    stats = benchmark.pedantic(run_system, args=(n_sites,), rounds=1, iterations=1)
    assert stats["rounds"] is not None
