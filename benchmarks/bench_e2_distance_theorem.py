"""E2 -- The distance-propagation theorem (paper section 3).

Claim: if all sites containing a cycle do at least one local trace per
round, then k rounds after the cycle became garbage the estimated distances
of all its objects are at least k.  Corollaries benchmarked alongside: live
objects' estimates converge to their true distances and then stop changing,
and every cyclic-garbage ioref eventually crosses any suspicion threshold.
"""

import pytest

from repro import GcConfig, Simulation, SimulationConfig
from repro.harness.report import Table
from repro.workloads import GraphBuilder, build_ring_cycle

NO_BT = GcConfig(enable_backtracing=False)


def make_sim(sites, seed=2):
    sim = Simulation(SimulationConfig(seed=seed, gc=NO_BT))
    sim.add_sites(sites, auto_gc=False)
    return sim


def min_cycle_distance(sim, workload):
    distances = []
    for member in workload.cycle:
        entry = sim.site(member.site).inrefs.get(member)
        if entry is not None:
            distances.append(entry.distance)
    return min(distances)


def sweep_rounds(n_sites, rounds):
    sites = [f"s{i}" for i in range(n_sites)]
    sim = make_sim(sites)
    workload = build_ring_cycle(sim, sites)
    for _ in range(3):
        sim.run_gc_round()
    workload.make_garbage(sim)
    base = min_cycle_distance(sim, workload)
    series = []
    for k in range(1, rounds + 1):
        sim.run_gc_round()
        series.append((k, min_cycle_distance(sim, workload), base + k))
    return base, series


@pytest.mark.parametrize("n_sites", [2, 4, 8])
def test_distance_lower_bound_per_round(benchmark, record_table, n_sites):
    base, series = benchmark.pedantic(
        sweep_rounds, args=(n_sites, 12), rounds=1, iterations=1
    )
    table = Table(
        f"E2 ring N={n_sites}: min estimated cycle distance vs rounds since garbage",
        ["round k", "min distance", "theorem bound (>= base+k)"],
    )
    for k, measured, bound in series:
        table.add_row(k, measured, bound)
        assert measured >= base + k  # stronger than the paper's ">= k"
    record_table(f"e2_growth_n{n_sites}", table)


def test_live_distances_converge_and_freeze(benchmark, record_table):
    def run():
        sites = [f"s{i}" for i in range(5)]
        sim = make_sim(sites)
        b = GraphBuilder(sim)
        root = b.obj("s0", "root", root=True)
        members = [b.obj(site) for site in sites[1:]]
        b.link(root, members[0])
        for left, right in zip(members, members[1:]):
            b.link(left, right)
        for _ in range(8):
            sim.run_gc_round()
        first = [
            sim.site(m.site).inrefs.require(m).distance for m in members
        ]
        for _ in range(5):
            sim.run_gc_round()
        second = [
            sim.site(m.site).inrefs.require(m).distance for m in members
        ]
        return members, first, second

    members, first, second = benchmark.pedantic(run, rounds=1, iterations=1)
    table = Table(
        "E2 live chain: estimates converge to true distance and freeze",
        ["object", "true distance", "estimate @8 rounds", "estimate @13 rounds"],
    )
    for index, member in enumerate(members, start=1):
        table.add_row(str(member), index, first[index - 1], second[index - 1])
        assert first[index - 1] == index
        assert second[index - 1] == index
    record_table("e2_live_convergence", table)


def test_suspicion_crossing_time(benchmark, record_table):
    """Rounds until every cycle ioref crosses the threshold ~ T + constant."""

    def run():
        rows = []
        for threshold in (4, 8, 12):
            sites = [f"s{i}" for i in range(3)]
            sim = Simulation(
                SimulationConfig(
                    seed=3,
                    gc=GcConfig(
                        suspicion_threshold=threshold, enable_backtracing=False
                    ),
                )
            )
            sim.add_sites(sites, auto_gc=False)
            workload = build_ring_cycle(sim, sites)
            for _ in range(3):
                sim.run_gc_round()
            workload.make_garbage(sim)
            rounds = 0
            while rounds < threshold + 10:
                sim.run_gc_round()
                rounds += 1
                if all(
                    sim.site(m.site).inrefs.require(m).is_suspected(threshold)
                    for m in workload.cycle
                    if sim.site(m.site).inrefs.get(m) is not None
                ):
                    break
            rows.append((threshold, rounds))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = Table(
        "E2 suspicion latency: rounds until a garbage ring is fully suspected",
        ["threshold T", "rounds to full suspicion"],
    )
    for threshold, rounds in rows:
        table.add_row(threshold, rounds)
        assert rounds <= threshold + 5
    record_table("e2_suspicion_latency", table)
