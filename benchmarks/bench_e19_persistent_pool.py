"""E19 (extension) -- Persistent pool, packed wire, shared arena.

Two claims about the rebuilt parallel data plane, measured separately:

1. **Throughput at scale** -- 256 sites of churn + auto GC sharded over a
   persistent worker pool.  With >= 4 physical cores the 4-worker run must
   finish in at most half the sequential wall time (the assertion is gated
   on ``os.cpu_count()``; the JSON records whatever the host produced).
2. **Coordination overhead** -- the packed wire format + shared arena
   against the pickled-list baseline (``packed_wire=False`` /
   ``shared_arena=False``) on an identical workload.  Counted on both
   sides of every worker pipe: messages still pickled per window (the hot
   payload kinds all pack, so this should drop to ~zero) and cross-shard
   payload bytes per window.  This half is meaningful even on a 1-core
   host -- the bytes cross the pipes regardless of physical parallelism.

Standalone mode emits the combined BENCH_parallel_sim.json document (host
header + the regenerated E16 segment + this E19 segment):

    PYTHONPATH=src python benchmarks/bench_e19_persistent_pool.py > BENCH_parallel_sim.json

``--smoke`` shrinks every segment for CI; ``--sites N`` overrides the
throughput site count.  The regenerated document also carries fixed-vs-
demand window-planner scale points (256 and 1024 sites), the E20
window-planning segment, the E21 direct-ring segment, and the E23
per-event hot-path segment.
"""

import os
import time

import pytest

from repro import GcConfig, NetworkConfig, Simulation, SimulationConfig
from repro.harness.report import Table
from repro.workloads import ChurnConfig, SiteChurn

try:  # package-relative when imported by pytest, flat when run standalone
    from .hostinfo import host_header
except ImportError:  # pragma: no cover
    from hostinfo import host_header

N_SITES = 256
DURATION = 600.0
NETWORK = dict(min_latency=8.0, max_latency=24.0, pair_rng_streams=True)
GC = dict(local_trace_period=150.0, local_trace_period_jitter=30.0)

OVERHEAD_SITES = 64
OVERHEAD_DURATION = 400.0
OVERHEAD_WORKERS = 4


def _build(
    workers, n_sites, seed=3, packed=True, arena=True, planner=None,
    churn_until=None, rings=None
):
    config = SimulationConfig(
        seed=seed,
        network=NetworkConfig(**NETWORK),
        gc=GcConfig(**GC),
        parallel_workers=workers,
        packed_wire=packed,
        shared_arena=arena,
        **({} if rings is None else {"direct_rings": rings}),
        **({} if planner is None else {"window_planner": planner}),
    )
    sim = Simulation.create(config)
    sites = [f"s{i:04d}" for i in range(n_sites)]
    sim.add_sites(sites, auto_gc=True)
    churn = SiteChurn(
        sim, sites, ChurnConfig(mean_interval=3.0, send_weight=2.5)
    )
    churn.start(until=churn_until)
    return sim


def run_throughput(workers, n_sites=N_SITES, duration=DURATION, seed=3):
    """One timed run on the persistent pool; snapshot proves the twin."""
    sim = _build(workers, n_sites, seed=seed)
    started = time.perf_counter()
    fired = sim.run_for(duration)
    wall_seconds = time.perf_counter() - started
    parallel = hasattr(sim, "coordination_stats")
    row = {
        "workers": workers,
        "events": fired,
        "wall_seconds": wall_seconds,
        "events_per_sec": fired / wall_seconds if wall_seconds > 0 else 0.0,
        "total_objects": sim.total_objects(),
    }
    if parallel and sim.parallel_active:
        stats = sim.coordination_stats()
        row["windows"] = stats["windows"]
        row["eot_jumps"] = stats["eot_jumps"]
        row["quiescence_jumps"] = stats["quiescence_jumps"]
        row["pipelined_windows"] = stats["pipelined_windows"]
        row["cross_shard_messages"] = stats["cross_shard_messages"]
        row["msgs_per_window"] = stats["cross_shard_messages"] / max(
            1, stats["windows"]
        )
        snap = sim.snapshot()
        sim.close()
    else:
        from repro.analysis.export import graph_snapshot

        snap = graph_snapshot(sim)
    row["snapshot"] = snap
    return row


def run_throughput_comparison(
    n_sites=N_SITES, duration=DURATION, worker_counts=(1, 2, 4)
):
    rows = {
        workers: run_throughput(workers, n_sites=n_sites, duration=duration)
        for workers in worker_counts
    }
    snapshots = [row.pop("snapshot") for row in rows.values()]
    results = {
        "sites": n_sites,
        "duration": duration,
        "snapshots_identical": all(s == snapshots[0] for s in snapshots),
    }
    for workers, row in sorted(rows.items()):
        key = "sequential" if workers == 1 else f"workers_{workers}"
        results[key] = row
    base = rows[1]["wall_seconds"]
    for workers in worker_counts:
        if workers != 1 and rows[workers]["wall_seconds"] > 0:
            results[f"speedup_{workers}x"] = (
                base / rows[workers]["wall_seconds"]
            )
    return results


def run_overhead(
    packed, n_sites=OVERHEAD_SITES, duration=OVERHEAD_DURATION, seed=5
):
    """Per-window coordination cost in one wire mode.

    Direct rings are pinned off on both sides: this A/B isolates the packed
    wire + arena against the pickled-list baseline; the ring data path has
    its own A/B in bench_e21_direct_rings.
    """
    sim = _build(
        OVERHEAD_WORKERS, n_sites, seed=seed, packed=packed, arena=packed,
        rings=False,
    )
    sim.run_for(duration)
    stats = sim.coordination_stats()
    snap = sim.snapshot()
    sim.close()
    windows = max(1, stats["windows"])
    return {
        "mode": "packed" if packed else "legacy_pickled_lists",
        "windows": stats["windows"],
        "cross_shard_messages": stats["cross_shard_messages"],
        "payloads_packed": stats["payloads_packed"],
        "payloads_pickled": stats["payloads_pickled"],
        "pickled_msgs_per_window": stats["payloads_pickled"] / windows,
        "payload_bytes": stats["payload_bytes"],
        "payload_bytes_per_window": stats["payload_bytes"] / windows,
        "pipe_bytes_total": stats["bytes_sent"] + stats["bytes_recv"],
        "pipe_bytes_per_window": (stats["bytes_sent"] + stats["bytes_recv"])
        / windows,
        "arena_bytes": stats["arena_bytes"],
        "snapshot": snap,
    }


def run_overhead_comparison(n_sites=OVERHEAD_SITES, duration=OVERHEAD_DURATION):
    packed = run_overhead(True, n_sites=n_sites, duration=duration)
    legacy = run_overhead(False, n_sites=n_sites, duration=duration)
    identical = packed.pop("snapshot") == legacy.pop("snapshot")
    results = {
        "sites": n_sites,
        "duration": duration,
        "workers": OVERHEAD_WORKERS,
        "snapshots_identical": identical,
        "packed": packed,
        "legacy": legacy,
    }
    # The ">= 5x drop" acceptance rides on messages still pickled per
    # window: the packed wire encodes every hot payload kind, so this goes
    # to ~zero (null ratio = nothing left to divide by).
    if packed["pickled_msgs_per_window"] > 0:
        results["pickled_msgs_per_window_drop"] = (
            legacy["pickled_msgs_per_window"] / packed["pickled_msgs_per_window"]
        )
    else:
        results["pickled_msgs_per_window_drop"] = None
    results["pickled_msgs_drop_at_least_5x"] = (
        packed["pickled_msgs_per_window"] == 0
        or results["pickled_msgs_per_window_drop"] >= 5.0
    )
    if packed["payload_bytes_per_window"] > 0:
        results["payload_bytes_per_window_drop"] = (
            legacy["payload_bytes_per_window"]
            / packed["payload_bytes_per_window"]
        )
    return results


def run_scale_point(n_sites, duration, workers=4, seed=3):
    """Fixed vs demand window planning at one site-count scale.

    An e13-style steady state: churn for the first quarter of the run, then
    a quiet tail of periodic GC -- the regime the demand planner exists
    for.  Only window/jump counters are compared (plus twin snapshots);
    wall time is recorded for honesty, never asserted.
    """
    churn_until = duration / 4.0
    rows = {}
    for planner in ("fixed", "demand"):
        sim = _build(
            workers, n_sites, seed=seed, planner=planner, churn_until=churn_until
        )
        started = time.perf_counter()
        fired = sim.run_for(duration)
        wall_seconds = time.perf_counter() - started
        stats = sim.coordination_stats()
        snap = sim.snapshot()
        sim.close()
        windows = max(1, stats["windows"])
        rows[planner] = {
            "events": fired,
            "wall_seconds": wall_seconds,
            "windows": stats["windows"],
            "eot_jumps": stats["eot_jumps"],
            "quiescence_jumps": stats["quiescence_jumps"],
            "pipelined_windows": stats["pipelined_windows"],
            "cross_shard_messages": stats["cross_shard_messages"],
            "msgs_per_window": stats["cross_shard_messages"] / windows,
            "snapshot": snap,
        }
    identical = rows["fixed"].pop("snapshot") == rows["demand"].pop("snapshot")
    return {
        "sites": n_sites,
        "duration": duration,
        "workers": workers,
        "churn_until": churn_until,
        "snapshots_identical": identical,
        "window_reduction": rows["fixed"]["windows"]
        / max(1, rows["demand"]["windows"]),
        "fixed": rows["fixed"],
        "demand": rows["demand"],
    }


# -- pytest entry points -----------------------------------------------------


def test_e19_overhead_drop(benchmark, record_table):
    """CI-sized packed-vs-legacy comparison; twin + overhead assertions."""

    def run():
        return run_overhead_comparison(n_sites=16, duration=300.0)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    table = Table(
        "E19: coordination overhead per window (16 sites, 4 workers)",
        ["mode", "windows", "msgs", "pickled/win", "payload B/win", "pipe B/win"],
    )
    for mode in ("packed", "legacy"):
        row = results[mode]
        table.add_row(
            row["mode"],
            row["windows"],
            row["cross_shard_messages"],
            f"{row['pickled_msgs_per_window']:.2f}",
            f"{row['payload_bytes_per_window']:.0f}",
            f"{row['pipe_bytes_per_window']:.0f}",
        )
    record_table("e19_persistent_pool", table)

    assert results["snapshots_identical"]
    assert results["pickled_msgs_drop_at_least_5x"]
    assert results["packed"]["payloads_pickled"] == 0


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4,
    reason="speedup needs >= 4 physical cores; overhead is measured above",
)
def test_e19_speedup_at_256_sites(benchmark):
    results = benchmark.pedantic(
        run_throughput_comparison, rounds=1, iterations=1
    )
    assert results["snapshots_identical"]
    assert results["speedup_4x"] >= 2.0


REGRESSION_TOLERANCE = 0.20


def _check_regression(results):
    """Warn (never fail) when a headline ratio degrades vs the committed
    BENCH_parallel_sim.json.

    Pure protocol ratios (byte and window-count drops) compare across
    scales; wall-clock speedups only against a baseline produced at the
    same scale (``smoke`` flag match), since the ratio depends on how much
    work each window amortizes.
    """
    import json
    import os
    import sys

    path = os.path.join(
        os.path.dirname(__file__), "..", "BENCH_parallel_sim.json"
    )
    try:
        with open(path) as fh:
            baseline = json.load(fh)
    except (OSError, ValueError):
        print("regression check: no readable BENCH_parallel_sim.json; skipping", file=sys.stderr)
        return
    scale_matched = results.get("smoke") == baseline.get("smoke")

    def segment_key(doc, segment, *keys):
        node = doc.get(segment, {})
        for key in keys:
            node = node.get(key, {}) if isinstance(node, dict) else {}
        return node if isinstance(node, (int, float)) else None

    checks = [
        (
            "e19.payload_bytes_per_window_drop",
            ("e19", "coordination_overhead", "payload_bytes_per_window_drop"),
            True,
        ),
        ("e19.speedup_4x", ("e19", "throughput", "speedup_4x"), scale_matched),
        ("e20.window_reduction", ("e20", "window_reduction"), scale_matched),
        ("e21.delta_poll_traffic_drop", ("e21", "delta_poll_traffic_drop"), True),
        ("e21.pipe_bytes_drop", ("e21", "pipe_bytes_drop"), True),
        ("e21.speedup_4x", ("e21", "speedup_4x"), scale_matched),
        (
            "e23.ping_storm_speedup",
            ("e23", "ping_storm", "events_per_sec_speedup"),
            scale_matched,
        ),
    ]
    for label, keys, comparable in checks:
        if not comparable:
            print(f"regression check: {label} skipped (scale mismatch vs baseline)", file=sys.stderr)
            continue
        base = segment_key(baseline, *keys)
        cur = segment_key(results, *keys)
        if not base or not cur:
            continue
        if cur < base * (1.0 - REGRESSION_TOLERANCE):
            print(
                f"WARNING: {label} regressed >20%: {cur:.3f} "
                f"vs baseline {base:.3f}"
            , file=sys.stderr)
        else:
            print(
                f"regression check: {label} ok ({cur:.3f} "
                f"vs baseline {base:.3f})"
            , file=sys.stderr)


if __name__ == "__main__":
    # Standalone mode: regenerate the whole BENCH_parallel_sim.json --
    # host header, the E16 segment (engine comparison at 64 sites), the
    # E19 segment (persistent pool + overhead, plus 256- and 1024-site
    # planner scale points), the E20 segment (window planning), the E21
    # segment (direct rings + delta exports), and the E23 segment (per-event
    # hot path vs the frozen legacy engine).  ``--sites N`` overrides
    # the throughput site count; ``--check-regression`` compares headline
    # ratios (warn-only) against the committed document.
    import json
    import sys

    import bench_e16_parallel_speedup as e16
    import bench_e20_window_planning as e20
    import bench_e21_direct_rings as e21
    import bench_e23_hot_path as e23

    smoke = "--smoke" in sys.argv
    sites_override = (
        int(sys.argv[sys.argv.index("--sites") + 1])
        if "--sites" in sys.argv
        else None
    )
    e16_stats = e16.run_comparison(
        n_sites=16 if smoke else e16.N_SITES,
        duration=400.0 if smoke else e16.DURATION,
    )
    e16_snapshots = [row.pop("snapshot") for row in e16_stats.values()]
    e16_segment = {
        "sites": 16 if smoke else e16.N_SITES,
        "duration": 400.0 if smoke else e16.DURATION,
        "snapshots_identical": all(s == e16_snapshots[0] for s in e16_snapshots),
    }
    for workers, row in sorted(e16_stats.items()):
        key = "sequential" if workers == 1 else f"workers_{workers}"
        e16_segment[key] = row
    for workers in (2, 4):
        if workers in e16_stats and e16_stats[workers]["wall_seconds"] > 0:
            e16_segment[f"speedup_{workers}x"] = (
                e16_stats[1]["wall_seconds"] / e16_stats[workers]["wall_seconds"]
            )

    e19_segment = {
        "throughput": run_throughput_comparison(
            n_sites=sites_override or (32 if smoke else N_SITES),
            duration=300.0 if smoke else DURATION,
        ),
        "coordination_overhead": run_overhead_comparison(
            n_sites=16 if smoke else OVERHEAD_SITES,
            duration=200.0 if smoke else OVERHEAD_DURATION,
        ),
        "planner_scale_points": [
            run_scale_point(n_sites, duration)
            for n_sites, duration in (
                ((64, 400.0),) if smoke else ((256, 1200.0), (1024, 600.0))
            )
        ],
    }

    e20_segment = e20.run_comparison(
        duration=6000.0 if smoke else e20.DURATION
    )

    e21_segment = e21.run_comparison(
        duration=1000.0 if smoke else e21.DURATION
    )

    e23_segment = e23.run_segment(smoke=smoke)

    results = {
        "host": host_header(),
        "smoke": smoke,
        "e16": e16_segment,
        "e19": e19_segment,
        "e20": e20_segment,
        "e21": e21_segment,
        "e23": e23_segment,
    }
    json.dump(results, sys.stdout, indent=2)
    print()
    if "--check-regression" in sys.argv:
        _check_regression(results)
    ok = (
        e16_segment["snapshots_identical"]
        and e19_segment["throughput"]["snapshots_identical"]
        and e19_segment["coordination_overhead"]["snapshots_identical"]
        and e19_segment["coordination_overhead"]["pickled_msgs_drop_at_least_5x"]
        and all(
            point["snapshots_identical"]
            for point in e19_segment["planner_scale_points"]
        )
        and e20_segment["snapshots_identical"]
        and e20_segment["window_reduction"] >= (4.0 if smoke else 5.0)
        and e21_segment["snapshots_identical"]
        and e21_segment["pipe_payload_drop_at_least_5x"]
        and e21_segment["delta_poll_drop_at_least_3x"]
        and e21_segment["rings_on"]["one_round_trip_per_window"]
        and e23.segment_ok(e23_segment)
    )
    if not ok:
        sys.exit(1)
