"""E17 -- Clean-path cost of the fault-injection layer and update hardening.

The fault plan hook sits on ``Network.send``, so it is consulted on every
message of every run -- including perfectly healthy ones.  This bench prices
that on the e13-shaped steady-state workload (site churn plus ring cycles on
16 sites with auto GC, then explicit collection rounds), run three ways:

- ``off``    -- the default configuration, ``fault_plan=None`` (the plan
  hook is a single None check per send);
- ``armed``  -- the same run with a fault plan attached whose only window
  lies entirely in the past: ``FaultPlan.roll`` walks its rules on every
  send but never fires, pricing the consultation itself;
- ``legacy`` -- ``reliable_updates=False``, no plan: the pre-hardening
  update protocol, reported so the cost of the at-least-once channel (one
  ack plus one timer per update) is visible next to the fault-layer cost.

The acceptance bar is on the fault layer: ``armed`` over ``off`` must stay
under 3% wall clock (pinned in ``BENCH_chaos_overhead.json``).  The ack
traffic of the hardened channel is a protocol change, not a hook tax, and is
reported unbounded -- its runs also legitimately diverge from ``legacy`` in
event order, because every extra ack advances the shared latency stream.
``armed`` vs ``off``, by contrast, must be byte-identical: an idle plan
draws zero fault randomness.
"""

import time

import pytest

from repro import GcConfig, Simulation, SimulationConfig
from repro.analysis import Oracle
from repro.net.faults import FaultPlan
from repro.workloads import ChurnConfig, SiteChurn, build_ring_cycle

N_SITES = 16
N_RINGS = 6
N_DOOMED = 3
CHURN_UNTIL = 1200.0
RUN_FOR = 1500.0

GC = dict(
    suspicion_threshold=2,
    assumed_cycle_length=2,
    back_threshold_increment=1,
    local_trace_period=100.0,
    local_trace_period_jitter=25.0,
)

#: Active long before the workload starts: consulted on every send, never
#: firing.  Three rules, so ``roll`` pays its full per-rule matching loop.
STALE_PLAN = FaultPlan.loss(1.0, start=0.0, end=0.5).merge(
    FaultPlan.duplication(1.0, copies=2, lag=5.0, start=0.0, end=0.5),
    FaultPlan.reorder_burst(1.0, delay=5.0, start=0.0, end=0.5),
).named("stale")


def run_mode(mode, seed=3, run_for=RUN_FOR):
    gc = GcConfig(**GC, reliable_updates=(mode != "legacy"))
    plan = STALE_PLAN if mode == "armed" else None
    sim = Simulation.create(SimulationConfig(seed=seed, gc=gc), fault_plan=plan)
    sites = [f"s{i:02d}" for i in range(N_SITES)]
    sim.add_sites(sites, auto_gc=True)
    rings = [
        build_ring_cycle(sim, [sites[(2 * k + j) % N_SITES] for j in range(4)])
        for k in range(N_RINGS)
    ]
    churn = SiteChurn(sim, sites, ChurnConfig(mean_interval=0.8))
    churn.start(until=min(CHURN_UNTIL, run_for * 0.8))

    started = time.perf_counter()
    sim.run_for(run_for)
    sim.quiesce_auto_gc()
    sim.settle(quiet_time=30.0, max_rounds=3000)
    for ring in rings[:N_DOOMED]:
        ring.make_garbage(sim)
    oracle = Oracle(sim)
    for _ in range(30):
        sim.run_gc_round()
        if not Oracle(sim).garbage_set():
            break
    wall_seconds = time.perf_counter() - started

    oracle.check_safety()
    assert not oracle.garbage_set()
    survivors = {
        site_id: frozenset(sim.sites[site_id].heap.object_ids())
        for site_id in sim.sites
    }
    return {
        "mode": mode,
        "wall_seconds": wall_seconds,
        "messages": sim.metrics.count("messages.total"),
        "acks": sim.metrics.count("messages.UpdateAck"),
        "retransmits": sim.metrics.count("gc.update_retransmits"),
        "dropped": sim.metrics.count("messages.lost"),
        "survivors": survivors,
    }


def run_comparison(run_for=RUN_FOR, repeats=5):
    """Best-of-N wall seconds per mode (the structural counters never vary).

    Modes are interleaved round-robin rather than run in blocks: frequency
    scaling and cache warm-up drift over a multi-second session, and a
    blocked order would charge that drift to whichever mode ran last.
    """
    stats = {}
    for _ in range(repeats):
        for mode in ("off", "armed", "legacy"):
            row = run_mode(mode, run_for=run_for)
            best = stats.get(mode)
            if best is None or row["wall_seconds"] < best["wall_seconds"]:
                stats[mode] = row
    return stats


def overhead_pct(stats, mode, base="off"):
    baseline = stats[base]["wall_seconds"]
    return 100.0 * (stats[mode]["wall_seconds"] - baseline) / baseline


def test_e17_fault_layer_is_inert_on_the_clean_path():
    stats = run_comparison(run_for=300.0, repeats=1)
    # The armed-but-idle plan must not change a single outcome or counter.
    assert stats["off"]["survivors"] == stats["armed"]["survivors"]
    assert stats["off"]["messages"] == stats["armed"]["messages"]
    assert stats["armed"]["dropped"] == 0
    # The hardened channel's only extra clean-path traffic is acks; a
    # healthy run never retransmits.  (Survivors are NOT compared against
    # ``legacy``: the ack messages advance the shared network latency
    # stream, so the runs diverge in event order -- legitimately.)
    assert stats["off"]["retransmits"] == 0
    assert stats["off"]["acks"] > 0
    assert stats["legacy"]["acks"] == 0


@pytest.mark.parametrize("mode", ["off", "armed", "legacy"])
def test_e17_wall_time(benchmark, mode):
    stats = benchmark.pedantic(
        run_mode, args=(mode,), kwargs={"run_for": 300.0}, rounds=1, iterations=1
    )
    assert stats["wall_seconds"] >= 0


if __name__ == "__main__":
    # Standalone mode: emit the comparison as JSON so the repo can pin the
    # headline numbers (see BENCH_chaos_overhead.json).  ``--smoke`` runs a
    # shortened window for CI.
    import json
    import sys

    smoke = "--smoke" in sys.argv
    run_for = 300.0 if smoke else RUN_FOR
    stats = run_comparison(run_for=run_for, repeats=2 if smoke else 5)
    try:
        from .hostinfo import host_header
    except ImportError:
        from hostinfo import host_header

    results = {"host": host_header()}
    results |= {
        mode: {k: v for k, v in row.items() if k not in ("survivors", "mode")}
        for mode, row in stats.items()
    }
    results["run_for"] = run_for
    results["fault_layer_overhead_pct"] = overhead_pct(stats, "armed")
    results["hardening_overhead_pct"] = overhead_pct(stats, "off", base="legacy")
    results["armed_byte_identical"] = (
        stats["off"]["survivors"] == stats["armed"]["survivors"]
    )
    json.dump(results, sys.stdout, indent=2)
    print()
