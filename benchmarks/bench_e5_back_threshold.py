"""E5 -- The back-threshold trigger policy (paper section 4.3).

Claims:

- with T2 = T + L and L at least the true cycle length, the first back
  trace confirms garbage: no abortive Live traces;
- with L too small, traces start prematurely and return Live, but each
  visit bumps the per-ioref back threshold, so collection still converges;
- live suspects stop generating back traces once their (growing) thresholds
  exceed their (stable) distances, while garbage keeps generating traces
  until collected.
"""

import pytest

from repro import GcConfig, Simulation, SimulationConfig
from repro.analysis import Oracle
from repro.harness.report import Table
from repro.workloads import GraphBuilder, build_ring_cycle

CYCLE_SITES = 6


def run_policy(assumed_cycle_length, increment=4, max_rounds=100):
    sites = [f"s{i}" for i in range(CYCLE_SITES)]
    gc = GcConfig(
        suspicion_threshold=CYCLE_SITES + 2,
        assumed_cycle_length=assumed_cycle_length,
        back_threshold_increment=increment,
    )
    sim = Simulation(SimulationConfig(seed=5, gc=gc))
    sim.add_sites(sites, auto_gc=False)
    workload = build_ring_cycle(sim, sites)
    for _ in range(2):
        sim.run_gc_round()
    workload.make_garbage(sim)
    oracle = Oracle(sim)
    rounds = max_rounds
    for round_number in range(1, max_rounds + 1):
        sim.run_gc_round()
        oracle.check_safety()
        if not oracle.garbage_set():
            rounds = round_number
            break
    assert not oracle.garbage_set()
    return {
        "rounds": rounds,
        "live_traces": sim.metrics.count("backtrace.completed_live"),
        "garbage_traces": sim.metrics.count("backtrace.completed_garbage"),
        "started": sim.metrics.count("backtrace.started"),
    }


def test_e5_threshold_sweep(benchmark, record_table):
    def run():
        rows = []
        for length in (1, 2, 4, 6, 8, 12):
            stats = run_policy(length)
            rows.append(
                (
                    length,
                    CYCLE_SITES + 2 + length,
                    stats["started"],
                    stats["live_traces"],
                    stats["garbage_traces"],
                    stats["rounds"],
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = Table(
        f"E5: trigger policy on a {CYCLE_SITES}-site garbage ring (T={CYCLE_SITES + 2})",
        ["assumed L", "T2", "traces started", "abortive (Live)", "confirming", "rounds to collect"],
    )
    for row in rows:
        table.add_row(*row)
    record_table("e5_threshold_sweep", table)
    by_length = {row[0]: row for row in rows}
    # L >= true cycle length: zero abortive traces.
    assert by_length[6][3] == 0
    assert by_length[8][3] == 0
    # L too small: at least one abortive trace, yet collection completed.
    assert by_length[1][3] >= 1
    # Larger L delays collection (trades timeliness for precision).
    assert by_length[12][5] >= by_length[6][5]


def test_e5_live_suspects_go_quiet(benchmark, record_table):
    """A live long chain keeps its suspects; traces must stop re-firing."""

    def run():
        sites = [f"s{i}" for i in range(8)]
        gc = GcConfig(
            suspicion_threshold=3,      # the chain's tail is suspected
            assumed_cycle_length=1,     # trigger early: worst case
            back_threshold_increment=4,
        )
        sim = Simulation(SimulationConfig(seed=6, gc=gc))
        sim.add_sites(sites, auto_gc=False)
        b = GraphBuilder(sim)
        root = b.obj("s0", "root", root=True)
        members = [b.obj(site) for site in sites[1:]]
        b.link(root, members[0])
        for left, right in zip(members, members[1:]):
            b.link(left, right)
        counts = []
        for _ in range(30):
            sim.run_gc_round()
            counts.append(sim.metrics.count("backtrace.started"))
        return counts

    counts = benchmark.pedantic(run, rounds=1, iterations=1)
    table = Table(
        "E5 live chain: cumulative back traces started per round (must plateau)",
        ["round", "traces started (cumulative)"],
    )
    for round_number, count in enumerate(counts, start=1):
        if round_number % 3 == 0:
            table.add_row(round_number, count)
    record_table("e5_live_quiet", table)
    assert counts[-1] == counts[-10]  # no new traces in the last 10 rounds
    assert counts[-1] >= 1            # but some early abortive ones fired


def test_e5_increment_effect(benchmark, record_table):
    """Bigger increments silence live suspects in fewer abortive traces."""

    def run():
        rows = []
        for increment in (1, 2, 4, 8):
            stats = run_policy(assumed_cycle_length=2, increment=increment)
            rows.append((increment, stats["live_traces"], stats["rounds"]))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = Table(
        "E5: back-threshold increment vs abortive traces (premature T2)",
        ["increment", "abortive (Live) traces", "rounds to collect"],
    )
    for row in rows:
        table.add_row(*row)
    record_table("e5_increment", table)
