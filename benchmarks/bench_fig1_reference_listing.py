"""F1 -- Figure 1: recording inter-site references.

The figure's story: update messages give local tracing the locality property
(Q collects d, drops its outref for e, P then collects e), but the inter-site
cycle f <-> g is never collected by local tracing alone.  Back tracing closes
exactly that gap.
"""

import pytest

from repro import GcConfig
from repro.analysis import Oracle
from repro.harness.report import Table
from repro.harness.scenarios import build_figure1


def run_local_tracing_only(rounds=20):
    scenario = build_figure1(gc=GcConfig(enable_backtracing=False))
    sim = scenario.sim
    timeline = {}
    for round_number in range(1, rounds + 1):
        sim.run_gc_round()
        for label in ("d", "e", "f", "g"):
            oid = scenario[label]
            if label not in timeline and not sim.site(oid.site).heap.contains(oid):
                timeline[label] = round_number
    return scenario, timeline


def run_with_backtracing(max_rounds=40):
    scenario = build_figure1()
    sim = scenario.sim
    oracle = Oracle(sim)
    timeline = {}
    for round_number in range(1, max_rounds + 1):
        sim.run_gc_round()
        oracle.check_safety()
        for label in ("d", "e", "f", "g"):
            oid = scenario[label]
            if label not in timeline and not sim.site(oid.site).heap.contains(oid):
                timeline[label] = round_number
        if not oracle.garbage_set():
            break
    return scenario, timeline


def test_fig1_local_tracing_locality_and_leak(benchmark, record_table):
    (scenario, timeline) = benchmark.pedantic(
        run_local_tracing_only, rounds=1, iterations=1
    )
    table = Table(
        "F1 (Figure 1), local tracing only: collection round per object",
        ["object", "kind", "collected in round"],
    )
    table.add_row("d", "acyclic garbage at Q", timeline.get("d", "never"))
    table.add_row("e", "acyclic garbage at P (via update)", timeline.get("e", "never"))
    table.add_row("f", "inter-site cycle member", timeline.get("f", "never (leak)"))
    table.add_row("g", "inter-site cycle member", timeline.get("g", "never (leak)"))
    record_table("fig1_local_only", table)
    assert timeline.get("d") == 1
    assert timeline.get("e") == 2  # one update-message round later: locality
    assert "f" not in timeline and "g" not in timeline


def test_fig1_backtracing_closes_the_gap(benchmark, record_table):
    (scenario, timeline) = benchmark.pedantic(
        run_with_backtracing, rounds=1, iterations=1
    )
    table = Table(
        "F1 (Figure 1), with back tracing: collection round per object",
        ["object", "collected in round"],
    )
    for label in ("d", "e", "f", "g"):
        table.add_row(label, timeline.get(label, "never"))
    record_table("fig1_backtracing", table)
    assert "f" in timeline and "g" in timeline
    # Live objects a, b, c all survived.
    for label in ("a", "b", "c"):
        oid = scenario[label]
        assert scenario.sim.site(oid.site).heap.contains(oid)
